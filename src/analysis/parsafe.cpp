#include "analysis/parsafe.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/constprop.hpp"
#include "analysis/dataflow.hpp"
#include "support/metrics.hpp"

// Implementation notes — the documented approximations
// ----------------------------------------------------
// The pass is a conservative race detector with two deliberate, documented
// assumptions that match the code the lowering emits:
//
//  (1) Symbolic strides are assumed nonzero. A flat index `i*s + j` with a
//      loop-invariant `s` (usually a shape temp) is accepted as
//      distributing; constant strides that fold to 0 are rejected. The
//      invariant remainder (`j`, an inner loop variable) is assumed to
//      range below the stride — true for the row-major offsets genarray
//      and split/tile emit, where the stride *is* the inner extent.
//
//  (2) The mixed-radix "digit cover" rule: an IndexStore whose scalar
//      selectors are the digits `t % d0`, `(t/d0) % d1`, ... at distinct,
//      contiguous chain levels is accepted, assuming the loop range does
//      not exceed the product of the radices — true for matrixMap, which
//      derives the trip count from the same dimSize() products.
//
// Control dependence on the loop variable is not tracked: a scalar that
// takes different branch-assigned values per iteration joins to
// "invariant unknown". This cannot mis-approve a store (invariant store
// indexes are rejected as same-cell races anyway); it only affects the
// invariant-remainder part of assumption (1).

namespace mmx::analysis {

namespace {

// ---------------------------------------------------------------------------
// Builtin effect table.

struct BuiltinEffect {
  bool io = false;        // observable side effect, or mutable runtime state
  bool metaOnly = false;  // reads matrix metadata (shape) only, not elements
  bool aliasArg0 = false; // returns its first argument's handle
};

const BuiltinEffect* builtinEffect(const std::string& name) {
  static const std::map<std::string, BuiltinEffect> table = {
      // IO / runtime state.
      {"writeMatrix", {true, false, false}},
      {"printInt", {true, false, false}},
      {"printFloat", {true, false, false}},
      {"printBool", {true, false, false}},
      {"printStr", {true, false, false}},
      {"printShape", {true, true, false}},
      {"rcLive", {true, true, false}},
      {"refCount", {true, true, false}},
      // Metadata-only helpers.
      {"checkMatrixMeta", {false, true, true}},
      {"checkGenBounds", {false, true, false}},
      // Pure; matrix results are freshly allocated.
      {"readMatrix", {false, false, false}},
      {"initMatrix", {false, false, false}},
      {"cloneMatrix", {false, false, false}},
      {"connComp", {false, false, false}},
      {"detectEddies", {false, false, false}},
      {"synthSsh", {false, false, false}},
      {"matToFloat", {false, false, false}},
      {"numThreads", {false, false, false}},
      {"sqrtF", {false, false, false}},
      {"absF", {false, false, false}},
      {"absI", {false, false, false}},
  };
  auto it = table.find(name);
  return it == table.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Symbolic per-iteration values.

struct SymVal {
  enum class K : uint8_t {
    Unknown,  // arbitrary, possibly iteration-dependent
    Inv,      // invariant across iterations; cv may pin a constant
    IVar,     // the analyzed loop's variable
    Affine,   // ivar*coef + invariant (coefKnown ? coef : symbolic nonzero)
    RemChain, // ivar / r1 / ... / r_level
    Digit,    // (ivar / r1 .. r_level) % m — mixed-radix digit
    FreshMat, // matrix allocated within the current iteration
  };

  K k = K::Unknown;
  ConstVal cv;
  bool coefKnown = false;
  int64_t coef = 0;
  int level = 0;

  static SymVal unknown() { return {}; }
  static SymVal inv(ConstVal c = {}) {
    SymVal v;
    v.k = K::Inv;
    v.cv = c;
    return v;
  }
  static SymVal ivar() {
    SymVal v;
    v.k = K::IVar;
    return v;
  }
  static SymVal affineKnown(int64_t c) {
    if (c == 0) return inv();
    SymVal v;
    v.k = K::Affine;
    v.coefKnown = true;
    v.coef = c;
    return v;
  }
  static SymVal affineSym() {
    SymVal v;
    v.k = K::Affine;
    return v;
  }
  static SymVal remChain(int l) {
    SymVal v;
    v.k = K::RemChain;
    v.level = l;
    return v;
  }
  static SymVal digit(int l) {
    SymVal v;
    v.k = K::Digit;
    v.level = l;
    return v;
  }
  static SymVal fresh() {
    SymVal v;
    v.k = K::FreshMat;
    return v;
  }

  friend bool operator==(const SymVal& a, const SymVal& b) {
    return a.k == b.k && a.cv == b.cv && a.coefKnown == b.coefKnown &&
           a.coef == b.coef && a.level == b.level;
  }
};

/// Index values that provably differ across iterations.
bool distributes(const SymVal& v) {
  return v.k == SymVal::K::IVar || v.k == SymVal::K::Affine;
}

ConstVal foldArith(ir::ArithOp op, const ConstVal& a, const ConstVal& b) {
  if (!a.isInt() || !b.isInt()) return ConstVal::unknown();
  switch (op) {
    case ir::ArithOp::Add: return ConstVal::intVal(a.i + b.i);
    case ir::ArithOp::Sub: return ConstVal::intVal(a.i - b.i);
    case ir::ArithOp::Mul:
    case ir::ArithOp::EwMul: return ConstVal::intVal(a.i * b.i);
    case ir::ArithOp::Div:
      return b.i ? ConstVal::intVal(a.i / b.i) : ConstVal::unknown();
    case ir::ArithOp::Mod:
      return b.i ? ConstVal::intVal(a.i % b.i) : ConstVal::unknown();
    case ir::ArithOp::Min: return ConstVal::intVal(std::min(a.i, b.i));
    case ir::ArithOp::Max: return ConstVal::intVal(std::max(a.i, b.i));
  }
  return ConstVal::unknown();
}

SymVal combineArith(ir::ArithOp op, SymVal a, SymVal b, ir::Ty ty) {
  using K = SymVal::K;
  if (ty == ir::Ty::Mat) return SymVal::fresh(); // elementwise ops allocate
  if (a.k == K::Unknown || b.k == K::Unknown) return SymVal::unknown();
  if (a.k == K::FreshMat || b.k == K::FreshMat) return SymVal::unknown();

  auto indexish = [](const SymVal& v) {
    return v.k == K::IVar || v.k == K::Affine;
  };
  auto asAffine = [](const SymVal& v) {
    return v.k == K::IVar ? SymVal::affineKnown(1) : v;
  };
  auto chainLevel = [](const SymVal& v) -> int {
    if (v.k == K::IVar) return 0;
    if (v.k == K::RemChain) return v.level;
    return -1;
  };

  switch (op) {
    case ir::ArithOp::Add:
    case ir::ArithOp::Sub: {
      if (a.k == K::Inv && b.k == K::Inv)
        return SymVal::inv(foldArith(op, a.cv, b.cv));
      if (indexish(a) && b.k == K::Inv) return asAffine(a);
      if (a.k == K::Inv && indexish(b)) {
        SymVal r = asAffine(b);
        if (op == ir::ArithOp::Sub) {
          if (!r.coefKnown) return SymVal::affineSym();
          return SymVal::affineKnown(-r.coef);
        }
        return r;
      }
      if (indexish(a) && indexish(b)) {
        SymVal ra = asAffine(a), rb = asAffine(b);
        if (!ra.coefKnown || !rb.coefKnown) return SymVal::unknown();
        int64_t c = op == ir::ArithOp::Add ? ra.coef + rb.coef
                                           : ra.coef - rb.coef;
        return SymVal::affineKnown(c);
      }
      return SymVal::unknown();
    }
    case ir::ArithOp::Mul:
    case ir::ArithOp::EwMul: {
      if (a.k == K::Inv && b.k == K::Inv)
        return SymVal::inv(foldArith(op, a.cv, b.cv));
      // Normalize to indexish * invariant.
      if (a.k == K::Inv && indexish(b)) std::swap(a, b);
      if (indexish(a) && b.k == K::Inv) {
        SymVal ra = asAffine(a);
        if (b.cv.isInt()) {
          if (b.cv.i == 0) return SymVal::inv(ConstVal::intVal(0));
          if (ra.coefKnown) return SymVal::affineKnown(ra.coef * b.cv.i);
        }
        return SymVal::affineSym(); // symbolic stride, assumed nonzero
      }
      return SymVal::unknown();
    }
    case ir::ArithOp::Div: {
      if (a.k == K::Inv && b.k == K::Inv)
        return SymVal::inv(foldArith(op, a.cv, b.cv));
      int l = chainLevel(a);
      if (l >= 0 && b.k == K::Inv) {
        if (b.cv.isInt() && b.cv.i == 1) return a; // x / 1 == x
        if (b.cv.isInt() && b.cv.i <= 0) return SymVal::unknown();
        return SymVal::remChain(l + 1);
      }
      return SymVal::unknown();
    }
    case ir::ArithOp::Mod: {
      if (a.k == K::Inv && b.k == K::Inv)
        return SymVal::inv(foldArith(op, a.cv, b.cv));
      int l = chainLevel(a);
      if (l >= 0 && b.k == K::Inv) {
        if (b.cv.isInt() && b.cv.i == 1)
          return SymVal::inv(ConstVal::intVal(0));
        if (b.cv.isInt() && b.cv.i <= 0) return SymVal::unknown();
        return SymVal::digit(l);
      }
      return SymVal::unknown();
    }
    case ir::ArithOp::Min:
    case ir::ArithOp::Max: {
      if (a.k == K::Inv && b.k == K::Inv)
        return SymVal::inv(foldArith(op, a.cv, b.cv));
      return SymVal::unknown();
    }
  }
  return SymVal::unknown();
}

// ---------------------------------------------------------------------------
// Per-iteration effects collected during the symbolic walk.

struct MatAccess {
  std::vector<const ir::Expr*> flatWrites; // StoreFlat indexes
  std::vector<const ir::Stmt*> idxWrites;  // IndexStore statements
  std::vector<const ir::Expr*> flatReads;  // LoadFlat indexes
  bool wholeRead = false;                  // slice/arith/call element read
};

struct Effects {
  std::map<int32_t, MatAccess> mat; // shared matrices touched by the body
  std::vector<std::string> reasons;
  std::set<std::string> seen;
  std::set<int32_t> badVars;

  void reason(std::string r, int32_t slot = -1) {
    if (seen.insert(r).second) reasons.push_back(std::move(r));
    if (slot >= 0) badVars.insert(slot);
  }
};

std::string varName(const ir::Function& f, int32_t slot) {
  if (slot >= 0 && static_cast<size_t>(slot) < f.locals.size())
    return f.locals[slot].name;
  return "<slot " + std::to_string(slot) + ">";
}

// ---------------------------------------------------------------------------
// The symbolic walk, phrased as a ForwardEngine policy.

struct SymTransfer {
  using State = std::vector<SymVal>;

  const ir::Function& f;
  const ir::Module& mod;
  const std::map<const ir::Function*, FnSummary>& sums;
  Effects& eff;

  State copy(const State& s) { return s; }

  bool join(State& a, const State& b) {
    bool changed = false;
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] == b[i]) continue;
      // Two fresh matrices from different paths are still iteration-
      // private; anything else degrades to unknown.
      SymVal m = (a[i].k == SymVal::K::FreshMat &&
                  b[i].k == SymVal::K::FreshMat)
                     ? SymVal::fresh()
                     : SymVal::unknown();
      if (!(a[i] == m)) a[i] = m, changed = true;
    }
    return changed;
  }

  bool shared(const State& st, int32_t slot) const {
    if (slot < 0 || static_cast<size_t>(slot) >= st.size()) return true;
    return st[slot].k != SymVal::K::FreshMat;
  }

  SymVal eval(const ir::Expr& e, const State& st) const {
    switch (e.k) {
      case ir::Expr::K::ConstI: return SymVal::inv(ConstVal::intVal(e.i));
      case ir::Expr::K::ConstB: return SymVal::inv(ConstVal::intVal(e.i));
      case ir::Expr::K::ConstF:
      case ir::Expr::K::ConstS: return SymVal::inv();
      case ir::Expr::K::Var:
        if (e.slot >= 0 && static_cast<size_t>(e.slot) < st.size())
          return st[e.slot];
        return SymVal::unknown();
      case ir::Expr::K::Arith:
        return combineArith(e.aop, eval(*e.args[0], st), eval(*e.args[1], st),
                            e.ty);
      case ir::Expr::K::Neg: {
        SymVal a = eval(*e.args[0], st);
        if (a.k == SymVal::K::Inv)
          return SymVal::inv(a.cv.isInt() ? ConstVal::intVal(-a.cv.i)
                                          : ConstVal::unknown());
        if (a.k == SymVal::K::IVar) return SymVal::affineKnown(-1);
        if (a.k == SymVal::K::Affine)
          return a.coefKnown ? SymVal::affineKnown(-a.coef)
                             : SymVal::affineSym();
        return SymVal::unknown();
      }
      case ir::Expr::K::Cast: {
        SymVal a = eval(*e.args[0], st);
        if (a.k != SymVal::K::Inv) return SymVal::unknown();
        return SymVal::inv(e.ty == ir::Ty::I32 && a.cv.isInt()
                               ? a.cv
                               : ConstVal::unknown());
      }
      case ir::Expr::K::Cmp:
      case ir::Expr::K::Logic:
      case ir::Expr::K::Not: {
        for (const auto& a : e.args)
          if (a && !(eval(*a, st).k == SymVal::K::Inv))
            return SymVal::unknown();
        return SymVal::inv();
      }
      case ir::Expr::K::Call: {
        const BuiltinEffect* be = builtinEffect(e.s);
        if (be && be->aliasArg0 && !e.args.empty())
          return eval(*e.args[0], st);
        if (be && !be->io) {
          if (e.ty == ir::Ty::Mat) return SymVal::fresh();
          for (const auto& a : e.args)
            if (a && !(eval(*a, st).k == SymVal::K::Inv))
              return SymVal::unknown();
          return SymVal::inv();
        }
        return SymVal::unknown();
      }
      case ir::Expr::K::Index:
      case ir::Expr::K::RangeLit:
        return e.ty == ir::Ty::Mat ? SymVal::fresh() : SymVal::unknown();
      case ir::Expr::K::DimSize: {
        // The shape of a matrix that predates the loop never changes
        // (stores mutate elements, not metadata).
        const ir::Expr& m = *e.args[0];
        if (m.k == ir::Expr::K::Var && m.slot >= 0 &&
            static_cast<size_t>(m.slot) < st.size() &&
            st[m.slot].k == SymVal::K::Inv) {
          SymVal d = eval(*e.args[1], st);
          if (d.k == SymVal::K::Inv && d.cv.isInt())
            return SymVal::inv(
                ConstVal::shape(m.slot, static_cast<int32_t>(d.cv.i)));
          return SymVal::inv();
        }
        return SymVal::unknown();
      }
      case ir::Expr::K::LoadFlat:
      default: return SymVal::unknown();
    }
  }

  // Records element reads of shared matrices (and IO) inside `e`.
  void scanReads(const ir::Expr& e, const State& st) {
    switch (e.k) {
      case ir::Expr::K::Var:
        if (e.ty == ir::Ty::Mat && shared(st, e.slot))
          eff.mat[e.slot].wholeRead = true;
        return;
      case ir::Expr::K::LoadFlat: {
        const ir::Expr& base = *e.args[0];
        scanReads(*e.args[1], st);
        if (base.k == ir::Expr::K::Var && base.ty == ir::Ty::Mat) {
          if (shared(st, base.slot))
            eff.mat[base.slot].flatReads.push_back(e.args[1].get());
        } else {
          scanReads(base, st);
        }
        return;
      }
      case ir::Expr::K::DimSize:
        // Metadata read only; the base matrix's elements are untouched.
        if (e.args[0]->k != ir::Expr::K::Var) scanReads(*e.args[0], st);
        scanReads(*e.args[1], st);
        return;
      case ir::Expr::K::Call: {
        const BuiltinEffect* be = builtinEffect(e.s);
        const ir::Function* callee = be ? nullptr : mod.find(e.s);
        const FnSummary* cs = nullptr;
        if (callee) {
          auto it = sums.find(callee);
          if (it != sums.end()) cs = &it->second;
        }
        if (be) {
          if (be->io)
            eff.reason("the body calls '" + e.s + "', which performs IO");
        } else if (cs) {
          if (cs->hasIO)
            eff.reason("the body calls '" + e.s + "', which performs IO");
        } else {
          eff.reason("the body calls '" + e.s +
                     "', whose effects are unknown");
        }
        bool metaOnly = be && be->metaOnly;
        for (size_t j = 0; j < e.args.size(); ++j) {
          const ir::Expr& a = *e.args[j];
          if (a.k == ir::Expr::K::Var && a.ty == ir::Ty::Mat) {
            if (metaOnly || !shared(st, a.slot)) continue;
            if (cs && j < cs->writesParam.size() && cs->writesParam[j])
              eff.reason("matrix '" + varName(f, a.slot) +
                             "' may be written through the call to '" + e.s +
                             "'",
                         a.slot);
            eff.mat[a.slot].wholeRead = true;
          } else {
            scanReads(a, st);
          }
        }
        return;
      }
      default:
        for (const auto& a : e.args)
          if (a) scanReads(*a, st);
        for (const auto& d : e.dims) {
          if (d.a) scanReads(*d.a, st);
          if (d.b) scanReads(*d.b, st);
        }
        return;
    }
  }

  void checkIndexStoreDistributes(const ir::Stmt& s, const State& st) {
    bool ok = false;
    std::vector<int> digitLevels;
    int remLevel = -1;
    bool multiRem = false;
    for (const auto& d : s.dims) {
      if (d.kind != ir::IndexDim::Kind::Scalar || !d.a) continue;
      SymVal v = eval(*d.a, st);
      if (distributes(v)) ok = true;
      else if (v.k == SymVal::K::Digit) digitLevels.push_back(v.level);
      else if (v.k == SymVal::K::RemChain) {
        if (remLevel >= 0) multiRem = true;
        remLevel = v.level;
      }
    }
    if (!ok && !multiRem && (!digitLevels.empty() || remLevel >= 0)) {
      // Mixed-radix digit cover: distinct levels, contiguous from 0, with
      // an optional single remainder chain as the most significant digit.
      std::sort(digitLevels.begin(), digitLevels.end());
      bool contiguous = true;
      for (size_t i = 0; i < digitLevels.size(); ++i)
        if (digitLevels[i] != static_cast<int>(i)) contiguous = false;
      int top = static_cast<int>(digitLevels.size());
      if (contiguous &&
          (remLevel < 0 ? !digitLevels.empty() : remLevel == top))
        ok = true;
    }
    if (!ok)
      eff.reason("cannot prove stores to matrix '" + varName(f, s.slot) +
                     "' write disjoint regions in distinct iterations",
                 s.slot);
  }

  void transfer(const ir::Stmt& s, State& st) {
    for (const auto& e : s.exprs)
      if (e) scanReads(*e, st);
    for (const auto& d : s.dims) {
      if (d.a) scanReads(*d.a, st);
      if (d.b) scanReads(*d.b, st);
    }

    switch (s.k) {
      case ir::Stmt::K::Assign:
        if (s.slot >= 0 && static_cast<size_t>(s.slot) < st.size())
          st[s.slot] = eval(*s.exprs[0], st);
        break;
      case ir::Stmt::K::StoreFlat: {
        if (!shared(st, s.slot)) break;
        eff.mat[s.slot].flatWrites.push_back(s.exprs[0].get());
        SymVal idx = eval(*s.exprs[0], st);
        if (!distributes(idx)) {
          if (idx.k == SymVal::K::Inv)
            eff.reason("every iteration stores to the same element of "
                       "matrix '" +
                           varName(f, s.slot) + "'",
                       s.slot);
          else
            eff.reason("cannot prove stores to matrix '" +
                           varName(f, s.slot) +
                           "' hit distinct elements in distinct iterations",
                       s.slot);
        }
        break;
      }
      case ir::Stmt::K::IndexStore:
        if (!shared(st, s.slot)) break;
        eff.mat[s.slot].idxWrites.push_back(&s);
        checkIndexStoreDistributes(s, st);
        break;
      case ir::Stmt::K::For:
        // An inner loop variable spans the same range in every iteration
        // of the analyzed loop: invariant for distribution purposes.
        if (s.slot >= 0 && static_cast<size_t>(s.slot) < st.size())
          st[s.slot] = SymVal::inv();
        break;
      case ir::Stmt::K::CallAssign: {
        const ir::Function* callee = mod.find(s.callee);
        const FnSummary* cs = nullptr;
        if (callee) {
          auto it = sums.find(callee);
          if (it != sums.end()) cs = &it->second;
        }
        if (!cs)
          eff.reason("the body calls '" + s.callee +
                     "', whose effects are unknown");
        else if (cs->hasIO)
          eff.reason("the body calls '" + s.callee +
                     "', which performs IO");
        bool retAliasesShared = false;
        for (size_t j = 0; j < s.exprs.size(); ++j) {
          const ir::Expr& a = *s.exprs[j];
          if (a.k != ir::Expr::K::Var || a.ty != ir::Ty::Mat) continue;
          bool sh = shared(st, a.slot);
          if (sh && (!cs || (j < cs->writesParam.size() &&
                             cs->writesParam[j])))
            eff.reason("matrix '" + varName(f, a.slot) +
                           "' may be written through the call to '" +
                           s.callee + "'",
                       a.slot);
          if (sh && (!cs || (j < cs->retMayAliasParam.size() &&
                             cs->retMayAliasParam[j])))
            retAliasesShared = true;
        }
        for (int32_t d : s.dsts) {
          if (d < 0 || static_cast<size_t>(d) >= st.size()) continue;
          if (f.locals[d].ty == ir::Ty::Mat)
            st[d] = retAliasesShared ? SymVal::unknown() : SymVal::fresh();
          else
            st[d] = SymVal::unknown();
        }
        break;
      }
      default: break;
    }
  }
};

// ---------------------------------------------------------------------------
// Definite-assignment within one iteration: flags reads of body-written
// locals that may still hold the previous iteration's value.

struct DefAssignTransfer {
  using State = SlotSet;

  const std::set<int32_t>& bodyWritten;
  std::set<int32_t> exposed; // upward-exposed (loop-carried) reads

  State copy(const State& s) { return s; }
  bool join(State& a, const State& b) { return a.intersectWith(b); }

  void transfer(const ir::Stmt& s, State& st) {
    for (int32_t r : readSlots(s))
      if (bodyWritten.count(r) && !st.get(r)) exposed.insert(r);
    for (int32_t w : writtenSlots(s)) st.set(w);
  }
};

/// Break out of the analyzed loop / return from inside it.
void scanControl(const ir::Stmt& s, int depth, Effects& eff) {
  switch (s.k) {
    case ir::Stmt::K::Break:
      if (depth == 0) eff.reason("the body breaks out of the loop");
      return;
    case ir::Stmt::K::Ret:
      eff.reason("the body returns from inside the loop");
      return;
    case ir::Stmt::K::For:
    case ir::Stmt::K::While:
      for (const auto& k : s.kids)
        if (k) scanControl(*k, depth + 1, eff);
      return;
    default:
      for (const auto& k : s.kids)
        if (k) scanControl(*k, depth, eff);
      return;
  }
}

/// Does `root` (excluding the `skip` subtree) read any of `slots`?
void collectOutsideReads(const ir::Stmt& root, const ir::Stmt& skip,
                         std::set<int32_t>& reads) {
  if (&root == &skip) return;
  for (int32_t r : readSlots(root)) reads.insert(r);
  for (const auto& k : root.kids)
    if (k) collectOutsideReads(*k, skip, reads);
}

/// Checks the `acc = acc op e` pattern for `slot` over the loop body.
bool reductionPattern(const ir::Stmt& body, int32_t slot, ir::ArithOp& opOut) {
  int updates = 0;
  size_t totalReads = 0;
  bool ok = true, first = true;
  ir::ArithOp op{};
  forEachStmt(body, [&](const ir::Stmt& s) {
    forEachStmtExpr(s, [&](const ir::Expr& e) {
      if (e.k == ir::Expr::K::Var && e.slot == slot) ++totalReads;
    });
    auto ws = writtenSlots(s);
    if (std::find(ws.begin(), ws.end(), slot) == ws.end()) return;
    if (s.k != ir::Stmt::K::Assign) {
      ok = false;
      return;
    }
    const ir::Expr& rhs = *s.exprs[0];
    bool opOk = rhs.k == ir::Expr::K::Arith &&
                (rhs.aop == ir::ArithOp::Add || rhs.aop == ir::ArithOp::Mul ||
                 rhs.aop == ir::ArithOp::Min || rhs.aop == ir::ArithOp::Max);
    if (!opOk) {
      ok = false;
      return;
    }
    const ir::Expr& a = *rhs.args[0];
    const ir::Expr& b = *rhs.args[1];
    bool selfLeft = a.k == ir::Expr::K::Var && a.slot == slot &&
                    !exprReadsSlot(b, slot);
    bool selfRight = b.k == ir::Expr::K::Var && b.slot == slot &&
                     !exprReadsSlot(a, slot);
    if (!selfLeft && !selfRight) {
      ok = false;
      return;
    }
    if (first) op = rhs.aop, first = false;
    else if (op != rhs.aop) ok = false;
    ++updates;
  });
  if (!ok || updates == 0 || totalReads != static_cast<size_t>(updates))
    return false;
  opOut = op;
  return true;
}

FnSummary computeSummary(const ir::Module& m, const ir::Function& f,
                         const std::map<const ir::Function*, FnSummary>& sums) {
  FnSummary out;
  out.writesParam.assign(f.numParams, false);
  out.retMayAliasParam.assign(f.numParams, false);
  if (!f.body) return out;

  size_t n = f.locals.size();
  std::vector<std::vector<bool>> alias(n, std::vector<bool>(f.numParams));
  for (size_t i = 0; i < f.numParams && i < n; ++i)
    if (f.locals[i].ty == ir::Ty::Mat) alias[i][i] = true;

  std::function<void(const ir::Expr&, std::vector<bool>&)> aliasOf =
      [&](const ir::Expr& e, std::vector<bool>& acc) {
        if (e.k == ir::Expr::K::Var) {
          if (e.slot >= 0 && static_cast<size_t>(e.slot) < n)
            for (size_t j = 0; j < f.numParams; ++j)
              if (alias[e.slot][j]) acc[j] = true;
          return;
        }
        const BuiltinEffect* be =
            e.k == ir::Expr::K::Call ? builtinEffect(e.s) : nullptr;
        if (be && be->aliasArg0 && !e.args.empty()) aliasOf(*e.args[0], acc);
        // Everything else evaluates to a fresh matrix or a scalar.
      };
  auto orInto = [](std::vector<bool>& into, const std::vector<bool>& from) {
    bool ch = false;
    for (size_t j = 0; j < into.size() && j < from.size(); ++j)
      if (from[j] && !into[j]) into[j] = ch = true;
    return ch;
  };

  // Flow-insensitive alias fixpoint over Mat-typed frame assignments.
  for (size_t pass = 0; pass < n + 2; ++pass) {
    bool changed = false;
    forEachStmt(*f.body, [&](const ir::Stmt& s) {
      if (s.k == ir::Stmt::K::Assign && s.slot >= 0 &&
          static_cast<size_t>(s.slot) < n &&
          f.locals[s.slot].ty == ir::Ty::Mat) {
        std::vector<bool> acc(f.numParams);
        aliasOf(*s.exprs[0], acc);
        changed |= orInto(alias[s.slot], acc);
      } else if (s.k == ir::Stmt::K::CallAssign) {
        const ir::Function* callee = m.find(s.callee);
        auto it = callee ? sums.find(callee) : sums.end();
        std::vector<bool> acc(f.numParams);
        for (size_t j = 0; j < s.exprs.size(); ++j) {
          bool mayAlias =
              it == sums.end() ||
              (j < it->second.retMayAliasParam.size() &&
               it->second.retMayAliasParam[j]);
          if (mayAlias && s.exprs[j]) aliasOf(*s.exprs[j], acc);
        }
        for (int32_t d : s.dsts)
          if (d >= 0 && static_cast<size_t>(d) < n &&
              f.locals[d].ty == ir::Ty::Mat)
            changed |= orInto(alias[d], acc);
      }
    });
    if (!changed) break;
  }

  forEachStmt(*f.body, [&](const ir::Stmt& s) {
    if (s.k == ir::Stmt::K::StoreFlat || s.k == ir::Stmt::K::IndexStore) {
      if (s.slot >= 0 && static_cast<size_t>(s.slot) < n)
        for (size_t j = 0; j < f.numParams; ++j)
          if (alias[s.slot][j]) out.writesParam[j] = true;
    } else if (s.k == ir::Stmt::K::CallAssign) {
      const ir::Function* callee = m.find(s.callee);
      auto it = callee ? sums.find(callee) : sums.end();
      if (it == sums.end() || it->second.hasIO) out.hasIO = true;
      for (size_t j = 0; j < s.exprs.size(); ++j) {
        bool writes = it == sums.end() ||
                      (j < it->second.writesParam.size() &&
                       it->second.writesParam[j]);
        if (!writes || !s.exprs[j]) continue;
        std::vector<bool> acc(f.numParams);
        aliasOf(*s.exprs[j], acc);
        for (size_t p = 0; p < f.numParams; ++p)
          if (acc[p]) out.writesParam[p] = true;
      }
    } else if (s.k == ir::Stmt::K::Ret) {
      for (const auto& e : s.exprs) {
        if (!e) continue;
        std::vector<bool> acc(f.numParams);
        aliasOf(*e, acc);
        orInto(out.retMayAliasParam, acc);
      }
    }
    forEachStmtExpr(s, [&](const ir::Expr& e) {
      if (e.k != ir::Expr::K::Call) return;
      const BuiltinEffect* be = builtinEffect(e.s);
      if (be) {
        if (be->io) out.hasIO = true;
        return;
      }
      const ir::Function* callee = m.find(e.s);
      auto it = callee ? sums.find(callee) : sums.end();
      if (it == sums.end() || it->second.hasIO) out.hasIO = true;
      // A user function reached through a Call expression cannot write
      // its arguments' frames, but may write Mat argument buffers.
      for (size_t j = 0; it != sums.end() && j < e.args.size(); ++j) {
        if (j < it->second.writesParam.size() && it->second.writesParam[j] &&
            e.args[j]) {
          std::vector<bool> acc(f.numParams);
          aliasOf(*e.args[j], acc);
          for (size_t p = 0; p < f.numParams; ++p)
            if (acc[p]) out.writesParam[p] = true;
        }
      }
    });
  });
  return out;
}

bool summaryEq(const FnSummary& a, const FnSummary& b) {
  return a.hasIO == b.hasIO && a.writesParam == b.writesParam &&
         a.retMayAliasParam == b.retMayAliasParam;
}

} // namespace

// ---------------------------------------------------------------------------

std::map<const ir::Function*, FnSummary> summarizeModule(const ir::Module& m) {
  std::map<const ir::Function*, FnSummary> sums;
  for (const auto& f : m.functions) {
    FnSummary s;
    s.writesParam.assign(f->numParams, false);
    s.retMayAliasParam.assign(f->numParams, false);
    sums[f.get()] = std::move(s);
  }
  // Optimistic start + monotone re-evaluation converges even through
  // recursion; the bound is a belt-and-braces guard.
  for (size_t pass = 0; pass < m.functions.size() + 2; ++pass) {
    bool changed = false;
    for (const auto& f : m.functions) {
      FnSummary next = computeSummary(m, *f, sums);
      if (!summaryEq(next, sums[f.get()])) {
        sums[f.get()] = std::move(next);
        changed = true;
      }
    }
    if (!changed) break;
  }
  return sums;
}

const char* loopClassName(LoopClass c) {
  switch (c) {
    case LoopClass::Safe: return "safe";
    case LoopClass::Reduction: return "reduction";
    case LoopClass::Unsafe: return "unsafe";
  }
  return "?";
}

struct ParSafe::FnCtx {
  ConstShapeProp cp;
  explicit FnCtx(const ir::Function& f) : cp(f) {}
};

ParSafe::ParSafe(const ir::Module& m)
    : mod_(m), summaries_(summarizeModule(m)) {}

ParSafe::~ParSafe() = default;

const ParSafe::FnCtx& ParSafe::ctx(const ir::Function& f) const {
  auto& p = ctx_[&f];
  if (!p) p = std::make_unique<FnCtx>(f);
  return *p;
}

LoopFinding ParSafe::classifyLoop(const ir::Function& f,
                                  const ir::Stmt& loop) const {
  LoopFinding out;
  out.loop = &loop;
  out.fn = &f;
  if (loop.k != ir::Stmt::K::For || loop.kids.empty() || !loop.kids[0]) {
    out.cls = LoopClass::Unsafe;
    out.detail = "not a for loop";
    return out;
  }
  const ir::Stmt& body = *loop.kids[0];

  const ConstEnv* base = ctx(f).cp.atLoop(&loop);
  ConstEnv fallback;
  if (!base) {
    fallback.assign(f.locals.size(), ConstVal::unknown());
    base = &fallback;
  }

  // Trivial trip counts cannot race.
  ConstVal lo = evalConst(*loop.exprs[0], *base);
  ConstVal hi = evalConst(*loop.exprs[1], *base);
  if (lo.isInt() && hi.isInt() && hi.i - lo.i <= 1) {
    out.cls = LoopClass::Safe;
    out.detail = "at most one iteration";
    return out;
  }

  Effects eff;
  scanControl(body, 0, eff);

  // Symbolic walk: matrix effects + index distribution.
  SymTransfer sym{f, mod_, summaries_, eff};
  SymTransfer::State init(f.locals.size());
  for (size_t i = 0; i < f.locals.size(); ++i)
    init[i] = f.locals[i].ty == ir::Ty::Mat ? SymVal::inv()
                                            : SymVal::inv((*base)[i]);
  if (loop.slot >= 0 && static_cast<size_t>(loop.slot) < init.size())
    init[loop.slot] = SymVal::ivar();
  ForwardEngine<SymTransfer> symEngine(sym);
  symEngine.run(body, std::move(init));

  // Frame slots the body writes.
  std::set<int32_t> bodyWritten;
  forEachStmt(body, [&](const ir::Stmt& s) {
    for (int32_t w : writtenSlots(s)) bodyWritten.insert(w);
  });
  if (bodyWritten.count(loop.slot)) {
    eff.reason("the loop variable '" + varName(f, loop.slot) +
                   "' is modified in the body",
               loop.slot);
    bodyWritten.erase(loop.slot);
  }

  // Upward-exposed reads: a read of a body-written slot before the body
  // writes it sees the previous iteration's value.
  DefAssignTransfer da{bodyWritten, {}};
  ForwardEngine<DefAssignTransfer> daEngine(da);
  SlotSet daInit(f.locals.size());
  daInit.set(loop.slot);
  daEngine.run(body, std::move(daInit));

  // Reads after the loop (last-value dependences; the interpreter's
  // parallel-for gives workers private frames, so those writes are lost).
  std::set<int32_t> outsideReads;
  if (f.body) collectOutsideReads(*f.body, loop, outsideReads);

  std::vector<std::pair<int32_t, ir::ArithOp>> reductions;
  for (int32_t slot : da.exposed) {
    ir::Ty ty = slot >= 0 && static_cast<size_t>(slot) < f.locals.size()
                    ? f.locals[slot].ty
                    : ir::Ty::Void;
    ir::ArithOp op{};
    if ((ty == ir::Ty::I32 || ty == ir::Ty::F32) &&
        reductionPattern(body, slot, op)) {
      reductions.push_back({slot, op});
      continue;
    }
    if (ty == ir::Ty::Mat)
      eff.reason("matrix variable '" + varName(f, slot) +
                     "' is rebound from the previous iteration",
                 slot);
    else
      eff.reason("scalar '" + varName(f, slot) +
                     "' is read before it is written — its value is "
                     "carried from the previous iteration",
                 slot);
  }

  std::set<int32_t> reductionSlots;
  for (auto& [slot, op] : reductions) reductionSlots.insert(slot);
  for (int32_t slot : bodyWritten) {
    if (da.exposed.count(slot) || reductionSlots.count(slot)) continue;
    if (outsideReads.count(slot))
      eff.reason("'" + varName(f, slot) +
                     "' is assigned in the loop and read after it; a "
                     "parallel schedule would lose the last iteration's "
                     "value",
                 slot);
  }
  if (outsideReads.count(loop.slot))
    eff.reason("the loop variable '" + varName(f, loop.slot) +
                   "' is read after the loop",
               loop.slot);

  // Matrix read/write interplay.
  for (auto& [slot, acc] : eff.mat) {
    bool hasWrite = !acc.flatWrites.empty() || !acc.idxWrites.empty();
    if (!hasWrite) continue;
    std::string nm = varName(f, slot);
    bool uniform = acc.flatWrites.empty() || acc.idxWrites.empty();
    for (size_t i = 1; uniform && i < acc.flatWrites.size(); ++i)
      uniform = exprEquals(*acc.flatWrites[0], *acc.flatWrites[i]);
    for (size_t i = 1; uniform && i < acc.idxWrites.size(); ++i)
      uniform = dimsEqual(acc.idxWrites[0]->dims, acc.idxWrites[i]->dims);
    if (!uniform)
      eff.reason("stores to matrix '" + nm +
                     "' at different indices may overlap across iterations",
                 slot);
    if (acc.wholeRead)
      eff.reason("matrix '" + nm + "' is both read and written in the loop",
                 slot);
    for (const ir::Expr* r : acc.flatReads) {
      bool sameCell = uniform && !acc.flatWrites.empty() &&
                      acc.idxWrites.empty() &&
                      exprEquals(*r, *acc.flatWrites[0]);
      if (!sameCell) {
        eff.reason("matrix '" + nm +
                       "' is read at an index that may overlap another "
                       "iteration's store",
                   slot);
        break;
      }
    }
  }

  if (!eff.reasons.empty()) {
    out.cls = LoopClass::Unsafe;
    std::string d;
    for (const auto& r : eff.reasons) {
      if (!d.empty()) d += "; ";
      d += r;
    }
    out.detail = std::move(d);
    out.vars.assign(eff.badVars.begin(), eff.badVars.end());
    return out;
  }
  if (!reductions.empty()) {
    out.cls = LoopClass::Reduction;
    std::string d;
    for (auto& [slot, op] : reductions) {
      if (!d.empty()) d += "; ";
      d += "reduction into '" + varName(f, slot) + "' (" +
           ir::arithName(op) + ")";
      out.vars.push_back(slot);
    }
    out.detail = std::move(d);
    return out;
  }
  out.cls = LoopClass::Safe;
  return out;
}

std::vector<LoopFinding> ParSafe::analyzeAll() const {
  std::vector<LoopFinding> out;
  for (const auto& f : mod_.functions) {
    if (!f->body) continue;
    forEachStmt(*f->body, [&](const ir::Stmt& s) {
      if (s.k == ir::Stmt::K::For) out.push_back(classifyLoop(*f, s));
    });
  }
  return out;
}

std::vector<LoopFinding> enforceParallelSafety(ir::Module& m,
                                               DiagnosticEngine& diags,
                                               const ParSafeOptions& opts) {
  ParSafe ps(m);
  std::vector<LoopFinding> demoted;
  uint64_t checked = 0;
  for (const auto& f : m.functions) {
    if (!f->body) continue;
    forEachStmt(*f->body, [&](ir::Stmt& s) {
      if (s.k != ir::Stmt::K::For || !s.parallel) return;
      // Autopar promotions carry a dependence-analysis proof; this pass's
      // coarser exact-read-match test would wrongly demote them.
      if (s.parSrc == ir::Stmt::Par::Proven) return;
      ++checked;
      LoopFinding lf = ps.classifyLoop(*f, s);
      if (lf.cls == LoopClass::Safe) return;

      s.parallel = false; // never execute a racy schedule
      bool explicitReq = s.parSrc == ir::Stmt::Par::Explicit;
      std::string ln =
          s.loopName.empty() ? "loop" : "loop '" + s.loopName + "'";
      std::string msg =
          (explicitReq ? "cannot parallelize " : "not auto-parallelizing ") +
          ln + ": " + lf.detail + "; the loop runs serially";
      if (explicitReq) {
        if (opts.strictParallel)
          diags.error(s.range, msg);
        else
          diags.warning(s.range, msg);
      } else if (opts.warnParallel) {
        diags.warning(s.range, msg);
      }
      demoted.push_back(std::move(lf));
    });
  }
  if (metrics::enabled()) {
    metrics::counter("parallel.checked").add(checked);
    metrics::counter("parallel.demoted").add(demoted.size());
  }
  return demoted;
}

std::string renderAnalysis(const ir::Module& m,
                           const std::vector<LoopFinding>& findings) {
  std::ostringstream out;
  out << "parallel-safety analysis:\n";
  const ir::Function* cur = nullptr;
  bool any = false;
  for (const auto& lf : findings) {
    if (!lf.fn || !lf.loop) continue;
    any = true;
    if (lf.fn != cur) {
      cur = lf.fn;
      out << "  function " << cur->name << ":\n";
    }
    out << "    loop '"
        << (lf.loop->loopName.empty() ? "<anon>" : lf.loop->loopName) << "'";
    if (lf.loop->parallel) {
      if (lf.loop->parSrc == ir::Stmt::Par::Explicit)
        out << " [parallel, explicit]";
      else if (lf.loop->parSrc == ir::Stmt::Par::Proven)
        out << " [parallel, proven]";
      else
        out << " [parallel]";
    }
    out << ": " << loopClassName(lf.cls);
    if (!lf.detail.empty()) out << " — " << lf.detail;
    out << '\n';
  }
  if (!any) out << "  (no loops)\n";
  (void)m;
  return out.str();
}

} // namespace mmx::analysis
