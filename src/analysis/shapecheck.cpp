#include "analysis/shapecheck.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/dataflow.hpp"

namespace mmx::analysis {
namespace {

using ir::Expr;
using ir::Function;
using ir::IndexDim;
using ir::Stmt;

// ---------------------------------------------------------------------------
// Affine forms over interned atoms.
//
// A Form is either TOP (nullopt: nothing known) or a linear combination
// c + sum(coef_i * atom_i). Atoms are runtime quantities the program can
// not change once created: a dimension of a specific matrix value, an int
// parameter of the current activation, or a loop induction variable
// (valid only inside that loop's body, see the widening in execFor).

constexpr long long kBig = 1'000'000'000'000'000LL; // overflow guard

struct Lin {
  long long c = 0;
  std::map<int, long long> t; // atom id -> coefficient

  friend bool operator==(const Lin& a, const Lin& b) {
    return a.c == b.c && a.t == b.t;
  }
};
using Form = std::optional<Lin>;

bool tooBig(long long v) { return v > kBig || v < -kBig; }

Form linConst(long long v) {
  if (tooBig(v)) return std::nullopt;
  Lin l;
  l.c = v;
  return l;
}

Form linAtom(int atom) {
  Lin l;
  l.t[atom] = 1;
  return l;
}

/// a + sign*b (sign is +1 or -1); TOP-in TOP-out, TOP on overflow.
Form addForms(const Form& a, const Form& b, int sign) {
  if (!a || !b) return std::nullopt;
  Lin r = *a;
  if (tooBig(r.c + sign * b->c)) return std::nullopt;
  r.c += sign * b->c;
  for (const auto& [atom, coef] : b->t) {
    long long nc = r.t[atom] + sign * coef;
    if (tooBig(nc)) return std::nullopt;
    if (nc == 0)
      r.t.erase(atom);
    else
      r.t[atom] = nc;
  }
  return r;
}

Form mulForm(const Form& a, long long k) {
  if (!a) return std::nullopt;
  if (k == 0) return linConst(0);
  Lin r;
  if (tooBig(a->c * k)) return std::nullopt;
  r.c = a->c * k;
  for (const auto& [atom, coef] : a->t) {
    if (tooBig(coef * k)) return std::nullopt;
    r.t[atom] = coef * k;
  }
  return r;
}

bool formEq(const Form& a, const Form& b) { return a && b && *a == *b; }

bool isConst(const Form& f) { return f && f->t.empty(); }

// ---------------------------------------------------------------------------
// Abstract values.

struct Atom {
  enum class K : uint8_t { Dim, Param, Loop };
  K k = K::Dim;
  uint64_t vid = 0;                // Dim: dims[dim] of matrix value `vid`
  int32_t dim = 0;                 // Dim
  const Function* fn = nullptr;    // Param
  int32_t slot = -1;               // Param
  const Stmt* loop = nullptr;      // Loop: the For statement
};

/// What is known about one Mat-typed slot / expression value.
struct MatInfo {
  uint64_t vid = 0;       // value identity (0 = unknown); equal vids at the
                          // same program point denote the same runtime value
  bool init = false;      // definitely holds a value (non-null) — survives
                          // joins that destroy the identity (e.g. a rebind
                          // inside a loop), so null-only guards like
                          // dimSize's can still elide on merged paths
  int32_t rank = -1;      // -1 = unknown
  int32_t elem = -1;      // rt::Elem encoding, -1 = unknown
  std::vector<Form> dims; // size == rank when rank >= 0

  friend bool operator==(const MatInfo& a, const MatInfo& b) {
    return a.vid == b.vid && a.init == b.init && a.rank == b.rank &&
           a.elem == b.elem && a.dims == b.dims;
  }
};

struct State {
  std::vector<Form> ints;    // per slot; meaningful for I32/Bool slots
  std::vector<MatInfo> mats; // per slot; meaningful for Mat slots
};

enum class Class : uint8_t { Safe, Unknown, Violating };

struct LoopRange {
  Form lo, hiEx; // body executes with lo <= ind <= hiEx - 1
};

// ---------------------------------------------------------------------------

class Checker {
public:
  Checker(const ir::Module& m, const ShapeCheckOptions& opts,
          ir::GuardPlan& plan, DiagnosticEngine& diags)
      : mod_(m), opts_(opts), plan_(plan), diags_(diags) {}

  ShapeCheckStats run();

private:
  // --- atom / value-id interning ---------------------------------------
  int dimAtom(uint64_t vid, int32_t d) {
    auto [it, fresh] = dimAtomIds_.try_emplace({vid, d}, -1);
    if (fresh) {
      it->second = static_cast<int>(atoms_.size());
      Atom a;
      a.k = Atom::K::Dim;
      a.vid = vid;
      a.dim = d;
      atoms_.push_back(a);
    }
    return it->second;
  }
  int paramAtom(const Function* fn, int32_t slot) {
    auto [it, fresh] = paramAtomIds_.try_emplace({fn, slot}, -1);
    if (fresh) {
      it->second = static_cast<int>(atoms_.size());
      Atom a;
      a.k = Atom::K::Param;
      a.fn = fn;
      a.slot = slot;
      atoms_.push_back(a);
    }
    return it->second;
  }
  int loopAtom(const Stmt* loop) {
    auto [it, fresh] = loopAtomIds_.try_emplace(loop, -1);
    if (fresh) {
      it->second = static_cast<int>(atoms_.size());
      Atom a;
      a.k = Atom::K::Loop;
      a.loop = loop;
      atoms_.push_back(a);
    }
    return it->second;
  }

  /// Stable value id for the value produced by a defining site. Keys are
  /// (node, index): exprs use index 0, CallAssign destinations their dst
  /// index, function parameters (keyed by the Function) their slot.
  uint64_t siteVid(const void* site, int idx) {
    auto [it, fresh] = siteVids_.try_emplace({site, idx}, 0);
    if (fresh) it->second = nextVid_++;
    if (freshVids_) freshVids_->insert(it->second);
    return it->second;
  }

  // --- form/state plumbing ---------------------------------------------
  static bool joinForm(Form& a, const Form& b) {
    if (!a) return false;
    if (!b || !(*a == *b)) {
      a.reset();
      return true;
    }
    return false;
  }

  static bool joinMat(MatInfo& a, const MatInfo& b) {
    bool ch = false;
    if (a.vid != b.vid && a.vid != 0) {
      a.vid = 0;
      ch = true;
    }
    if (a.init && !b.init) {
      a.init = false;
      ch = true;
    }
    if (a.elem != b.elem && a.elem != -1) {
      a.elem = -1;
      ch = true;
    }
    if (a.rank != b.rank) {
      if (a.rank != -1) {
        a.rank = -1;
        a.dims.clear();
        ch = true;
      }
    } else if (a.rank >= 0) {
      for (int d = 0; d < a.rank; ++d) ch |= joinForm(a.dims[d], b.dims[d]);
    }
    return ch;
  }

  static bool joinState(State& a, const State& b) {
    bool ch = false;
    for (size_t i = 0; i < a.ints.size(); ++i) ch |= joinForm(a.ints[i], b.ints[i]);
    for (size_t i = 0; i < a.mats.size(); ++i) ch |= joinMat(a.mats[i], b.mats[i]);
    return ch;
  }

  static void joinInto(std::optional<State>& into, const State& from) {
    if (!into)
      into = from;
    else
      joinState(*into, from);
  }

  bool formRefsAny(const Form& f, const std::set<int>& atoms) const {
    if (!f) return false;
    for (const auto& [a, c] : f->t)
      if (atoms.count(a)) return true;
    return false;
  }

  /// Invalidate everything that referred to values a re-executed defining
  /// site produced earlier: copies of the old value lose their identity
  /// and forms naming the old value's dimensions go TOP. Ranges of loops
  /// whose bounds named them are weakened too (a loop can observe its own
  /// matrix being redefined mid-flight).
  void scrub(State& st, const std::set<uint64_t>& vids) {
    if (vids.empty()) return;
    auto stale = [&](const Form& f) {
      if (!f) return false;
      for (const auto& [a, c] : f->t) {
        const Atom& at = atoms_[static_cast<size_t>(a)];
        if (at.k == Atom::K::Dim && vids.count(at.vid)) return true;
      }
      return false;
    };
    for (auto& f : st.ints)
      if (stale(f)) f.reset();
    for (auto& m : st.mats) {
      if (m.vid != 0 && vids.count(m.vid)) m.vid = 0;
      for (auto& f : m.dims)
        if (stale(f)) f.reset();
    }
    for (auto& [loop, r] : loopRanges_) {
      if (stale(r.lo)) r.lo.reset();
      if (stale(r.hiEx)) r.hiEx.reset();
    }
  }

  /// A loop's induction atom only means "this iteration's value"; forms
  /// carried over the back edge would silently refer to the previous
  /// iteration, so they are widened to TOP before the entry join. The
  /// closure covers loops whose recorded range depends on the widened
  /// atom (their per-iteration meaning shifts with it).
  void widenLoop(State& st, int la) {
    if (la < 0) return;
    std::set<int> w{la};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const auto& [loop, aid] : loopAtomIds_) {
        if (w.count(aid)) continue;
        auto it = loopRanges_.find(loop);
        if (it == loopRanges_.end()) continue;
        if (formRefsAny(it->second.lo, w) || formRefsAny(it->second.hiEx, w)) {
          w.insert(aid);
          grew = true;
        }
      }
    }
    for (auto& f : st.ints)
      if (formRefsAny(f, w)) f.reset();
    for (auto& m : st.mats)
      for (auto& f : m.dims)
        if (formRefsAny(f, w)) f.reset();
  }

  // --- bound proofs ----------------------------------------------------
  /// proveMax: every runtime value of f is <= bound.
  /// proveMin: every runtime value of f is >= bound.
  bool proveMax(const Form& f, long long bound) { return proveDir(f, bound, +1); }
  bool proveMin(const Form& f, long long bound) { return proveDir(f, bound, -1); }

  bool proveDir(const Form& f, long long bound, int dir) {
    if (!f) return false;
    Lin l = *f;
    // Substitute loop atoms at the extreme of their recorded range.
    for (int budget = 48; budget-- > 0;) {
      int la = -1;
      long long coef = 0;
      for (const auto& [a, c] : l.t)
        if (atoms_[static_cast<size_t>(a)].k == Atom::K::Loop) {
          la = a;
          coef = c;
          break;
        }
      if (la < 0) break;
      auto it = loopRanges_.find(atoms_[static_cast<size_t>(la)].loop);
      if (it == loopRanges_.end()) return false;
      bool useHi = (coef > 0) == (dir > 0);
      Form sub = useHi ? addForms(it->second.hiEx, linConst(1), -1)
                       : it->second.lo;
      if (!sub) return false;
      l.t.erase(la);
      Form total = addForms(Form(l), mulForm(sub, coef), +1);
      if (!total) return false;
      l = *total;
    }
    for (const auto& [a, c] : l.t)
      if (atoms_[static_cast<size_t>(a)].k == Atom::K::Loop) return false;
    // Dimensions are >= 0, so a term pulling toward the bound can be
    // dropped; parameters are unbounded either way.
    for (auto it = l.t.begin(); it != l.t.end();) {
      const Atom& at = atoms_[static_cast<size_t>(it->first)];
      bool droppable = at.k == Atom::K::Dim &&
                       (dir > 0 ? it->second < 0 : it->second > 0);
      it = droppable ? l.t.erase(it) : std::next(it);
    }
    if (!l.t.empty()) return false;
    return dir > 0 ? l.c <= bound : l.c >= bound;
  }

  // --- abstract evaluation ---------------------------------------------
  Form dimFormOf(const MatInfo& m, int d) const {
    if (m.rank >= 0 && d >= 0 && d < m.rank) return m.dims[static_cast<size_t>(d)];
    return std::nullopt;
  }

  MatInfo matAt(const State& st, int32_t slot) {
    MatInfo m = st.mats[static_cast<size_t>(slot)];
    const ir::Local& l = curFn_->locals[static_cast<size_t>(slot)];
    // The slot's declared static type bounds the runtime value: a
    // float<2> slot always holds a rank-2 F32 matrix (MatrixAny bindings
    // go through checkMatrixMeta first).
    if (m.rank < 0 && l.matRank >= 0) {
      m.rank = l.matRank;
      m.dims.assign(static_cast<size_t>(m.rank), std::nullopt);
      if (m.vid != 0)
        for (int d = 0; d < m.rank; ++d)
          m.dims[static_cast<size_t>(d)] = linAtom(dimAtom(m.vid, d));
    }
    if (m.elem < 0 && l.matElem >= 0) m.elem = l.matElem;
    return m;
  }

  Form evalInt(const Expr& e, const State& st) {
    switch (e.k) {
      case Expr::K::ConstI:
      case Expr::K::ConstB:
        return linConst(e.i);
      case Expr::K::Var:
        if (e.ty == ir::Ty::I32 || e.ty == ir::Ty::Bool)
          return st.ints[static_cast<size_t>(e.slot)];
        return std::nullopt;
      case Expr::K::Arith: {
        if (e.ty != ir::Ty::I32) return std::nullopt;
        Form a = evalInt(*e.args[0], st);
        Form b = evalInt(*e.args[1], st);
        switch (e.aop) {
          case ir::ArithOp::Add: return addForms(a, b, +1);
          case ir::ArithOp::Sub: return addForms(a, b, -1);
          case ir::ArithOp::Mul:
          case ir::ArithOp::EwMul:
            if (isConst(a)) return mulForm(b, a->c);
            if (isConst(b)) return mulForm(a, b->c);
            return std::nullopt;
          default: return std::nullopt;
        }
      }
      case Expr::K::Neg:
        return mulForm(evalInt(*e.args[0], st), -1);
      case Expr::K::DimSize: {
        Form dF = evalInt(*e.args[1], st);
        if (!isConst(dF)) return std::nullopt;
        long long d = dF->c;
        MatInfo m = evalMat(*e.args[0], st);
        if (Form f = dimFormOf(m, static_cast<int>(d))) return f;
        if (m.vid != 0 && d >= 0 && d < 8)
          return linAtom(dimAtom(m.vid, static_cast<int>(d)));
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  MatInfo evalMat(const Expr& e, const State& st) {
    MatInfo m;
    switch (e.k) {
      case Expr::K::Var:
        if (e.ty == ir::Ty::Mat) return matAt(st, e.slot);
        return m;
      case Expr::K::Call:
        return evalMatCall(e, st);
      case Expr::K::Index: {
        MatInfo src = evalMat(*e.args[0], st);
        m.vid = siteVid(&e, 0);
        m.init = true;
        m.elem = src.elem;
        std::vector<Form> dims;
        for (size_t d = 0; d < e.dims.size(); ++d) {
          const IndexDim& sel = e.dims[d];
          switch (sel.kind) {
            case IndexDim::Kind::Scalar:
              break; // dropped from the result rank
            case IndexDim::Kind::Range: {
              // Count = b - a + 1; the selector guard established
              // a <= b + 1, so the count is a valid (>= 0) extent here.
              Form a = evalInt(*sel.a, st);
              Form b = evalInt(*sel.b, st);
              dims.push_back(addForms(addForms(b, a, -1), linConst(1), +1));
              break;
            }
            case IndexDim::Kind::All:
              dims.push_back(dimFormOf(src, static_cast<int>(d)));
              break;
            case IndexDim::Kind::Mask:
              dims.push_back(std::nullopt);
              break;
          }
        }
        if (dims.empty()) dims.push_back(linConst(1)); // all-scalar: 1-elem
        m.rank = static_cast<int32_t>(dims.size());
        m.dims = std::move(dims);
        return m;
      }
      case Expr::K::RangeLit: {
        m.vid = siteVid(&e, 0);
        m.init = true;
        m.rank = 1;
        m.elem = 0; // I32
        Form a = evalInt(*e.args[0], st);
        Form b = evalInt(*e.args[1], st);
        Form n = addForms(addForms(b, a, -1), linConst(1), +1);
        // The runtime clamps an empty range to extent 0, so the affine
        // count is only the true extent when it is provably non-negative.
        m.dims.push_back(proveMin(n, 0) ? n : Form());
        return m;
      }
      case Expr::K::Arith: {
        bool aMat = e.args[0]->ty == ir::Ty::Mat;
        bool bMat = e.args[1]->ty == ir::Ty::Mat;
        if (aMat && bMat) {
          MatInfo a = evalMat(*e.args[0], st);
          MatInfo b = evalMat(*e.args[1], st);
          m.vid = siteVid(&e, 0);
          m.init = true;
          if (e.aop == ir::ArithOp::Mul) { // linear-algebra matmul
            m.rank = 2;
            m.elem = a.elem >= 0 ? a.elem : b.elem;
            m.dims = {dimFormOf(a, 0), dimFormOf(b, 1)};
          } else { // elementwise: the guard established equal shapes
            m.elem = a.elem >= 0 ? a.elem : b.elem;
            const MatInfo& src = a.rank >= 0 ? a : b;
            m.rank = src.rank;
            m.dims = src.dims;
            if (m.rank >= 0 && b.rank == m.rank)
              for (int d = 0; d < m.rank; ++d)
                if (!m.dims[static_cast<size_t>(d)])
                  m.dims[static_cast<size_t>(d)] = b.dims[static_cast<size_t>(d)];
          }
          return m;
        }
        if (aMat || bMat) { // scalar-matrix elementwise
          const Expr& matSide = aMat ? *e.args[0] : *e.args[1];
          const Expr& sclSide = aMat ? *e.args[1] : *e.args[0];
          MatInfo src = evalMat(matSide, st);
          m.vid = siteVid(&e, 0);
          m.init = true;
          m.rank = src.rank;
          m.dims = src.dims;
          m.elem = sclSide.ty == ir::Ty::F32 ? 1
                   : (sclSide.ty == ir::Ty::I32 && src.elem == 0) ? 0
                                                                  : -1;
          return m;
        }
        return m;
      }
      case Expr::K::Cmp: {
        bool aMat = e.args[0]->ty == ir::Ty::Mat;
        bool bMat = e.args[1]->ty == ir::Ty::Mat;
        if (!aMat && !bMat) return m;
        MatInfo src = evalMat(aMat ? *e.args[0] : *e.args[1], st);
        m.vid = siteVid(&e, 0);
        m.init = true;
        m.rank = src.rank;
        m.dims = src.dims;
        m.elem = 2; // Bool
        return m;
      }
      case Expr::K::Neg: {
        if (e.ty != ir::Ty::Mat) return m;
        MatInfo src = evalMat(*e.args[0], st);
        m.vid = siteVid(&e, 0);
        m.init = true;
        m.rank = src.rank;
        m.elem = src.elem;
        m.dims = src.dims;
        return m;
      }
      default:
        return m;
    }
  }

  MatInfo evalMatCall(const Expr& e, const State& st) {
    MatInfo m;
    const std::string& c = e.s;
    if (c == "initMatrix") {
      m.vid = siteVid(&e, 0);
      m.init = true;
      m.rank = static_cast<int32_t>(e.args.size()) - 1;
      Form elemF = evalInt(*e.args[0], st);
      if (isConst(elemF)) m.elem = static_cast<int32_t>(elemF->c);
      for (size_t i = 1; i < e.args.size(); ++i) {
        Form d = evalInt(*e.args[i], st);
        // A TOP extent still has a stable identity: this value's dim.
        m.dims.push_back(d ? d : linAtom(dimAtom(m.vid, static_cast<int>(i) - 1)));
      }
      return m;
    }
    if (c == "checkMatrixMeta") {
      MatInfo src = evalMat(*e.args[0], st);
      Form elemF = evalInt(*e.args[1], st);
      Form rankF = evalInt(*e.args[2], st);
      m.vid = src.vid != 0 ? src.vid : siteVid(&e, 0);
      m.init = true; // the meta check rejects null before this value flows on
      if (isConst(elemF)) m.elem = static_cast<int32_t>(elemF->c);
      if (isConst(rankF)) {
        m.rank = static_cast<int32_t>(rankF->c);
        if (src.rank == m.rank)
          m.dims = src.dims;
        else {
          m.dims.assign(static_cast<size_t>(m.rank), std::nullopt);
          for (int d = 0; d < m.rank; ++d)
            m.dims[static_cast<size_t>(d)] = linAtom(dimAtom(m.vid, d));
        }
      }
      return m;
    }
    if (c == "cloneMatrix" || c == "matToFloat") {
      MatInfo src = evalMat(*e.args[0], st);
      m.vid = siteVid(&e, 0);
      m.init = true;
      m.rank = src.rank;
      m.dims = src.dims;
      m.elem = c == "matToFloat" ? 1 : src.elem;
      return m;
    }
    if (c == "synthSsh") {
      m.vid = siteVid(&e, 0);
      m.init = true;
      m.rank = 3;
      m.elem = 1; // F32
      for (int d = 0; d < 3; ++d) {
        Form f = evalInt(*e.args[static_cast<size_t>(d)], st);
        m.dims.push_back(f ? f : linAtom(dimAtom(m.vid, d)));
      }
      return m;
    }
    if (e.ty == ir::Ty::Mat) { // readMatrix & friends
      m.vid = siteVid(&e, 0);
      m.init = true;
    }
    return m;
  }

  // --- guard classification --------------------------------------------
  void record(const void* site, Class c, const char* msg = nullptr) {
    if (!recording_) return;
    auto [it, fresh] = fnClass_.try_emplace(site, c);
    if (!fresh && it->second != c) it->second = Class::Unknown;
    if (c == Class::Violating && msg) fnViol_[site] = {msg, curRange_};
  }

  /// Per-dimension scalar/range/mask selector checks shared by Index
  /// expressions and IndexStore statements. Returns the per-site class
  /// covering the whole selector list.
  Class classifySelectors(const MatInfo& m, const std::vector<IndexDim>& sels,
                          const State& st, const char** why) {
    if (m.rank < 0 || m.rank != static_cast<int32_t>(sels.size()))
      return Class::Unknown;
    bool allSafe = true;
    for (size_t d = 0; d < sels.size(); ++d) {
      const IndexDim& sel = sels[d];
      Form dim = dimFormOf(m, static_cast<int>(d));
      switch (sel.kind) {
        case IndexDim::Kind::Scalar: {
          Form a = evalInt(*sel.a, st);
          Form over = addForms(a, dim, -1);
          if (proveMax(a, -1) || proveMin(over, 0)) {
            *why = "scalar index is provably out of bounds";
            return Class::Violating;
          }
          allSafe &= proveMin(a, 0) && proveMax(over, -1);
          break;
        }
        case IndexDim::Kind::Range: {
          Form a = evalInt(*sel.a, st);
          Form b = evalInt(*sel.b, st);
          Form over = addForms(b, dim, -1);
          Form span = addForms(a, b, -1);
          if (proveMax(a, -1) || proveMin(over, 0) || proveMin(span, 2)) {
            *why = "range index is provably out of bounds";
            return Class::Violating;
          }
          allSafe &= proveMin(a, 0) && proveMax(over, -1) && proveMax(span, 1);
          break;
        }
        case IndexDim::Kind::All:
          break;
        case IndexDim::Kind::Mask: {
          MatInfo mk = evalMat(*sel.a, st);
          Form diff = addForms(dimFormOf(mk, 0), dim, -1);
          if ((mk.elem >= 0 && mk.elem != 2) || (mk.rank >= 0 && mk.rank != 1) ||
              (isConst(diff) && diff->c != 0)) {
            *why = "logical index mask provably does not fit the dimension";
            return Class::Violating;
          }
          allSafe &= mk.vid != 0 && mk.elem == 2 && mk.rank == 1 &&
                     formEq(dimFormOf(mk, 0), dim);
          break;
        }
      }
    }
    return allSafe ? Class::Safe : Class::Unknown;
  }

  /// Splits a lowered row-major flat offset back into per-dimension digit
  /// forms by matching the `(...((d0)*dim1 + d1)*dim2 + d2...)` shape the
  /// indexing and genarray lowerings emit.
  std::optional<std::vector<Form>> peelFlat(const MatInfo& m, const Expr& flat,
                                            const State& st) {
    int r = m.rank;
    if (r <= 0) return std::nullopt;
    std::vector<Form> digits(static_cast<size_t>(r));
    const Expr* cur = &flat;
    for (int k = r - 1; k >= 1; --k) {
      if (cur->k != Expr::K::Arith || cur->aop != ir::ArithOp::Add)
        return std::nullopt;
      const Expr* mul = cur->args[0].get();
      if (mul->k != Expr::K::Arith || mul->aop != ir::ArithOp::Mul)
        return std::nullopt;
      if (!formEq(evalInt(*mul->args[1], st), dimFormOf(m, k)))
        return std::nullopt;
      digits[static_cast<size_t>(k)] = evalInt(*cur->args[1], st);
      cur = mul->args[0].get();
    }
    digits[0] = evalInt(*cur, st);
    return digits;
  }

  void classifyFlat(const void* site, const Expr& matE, const Expr& flatE,
                    const State& st) {
    MatInfo m = evalMat(matE, st);
    auto digits = peelFlat(m, flatE, st);
    if (!digits) {
      record(site, Class::Unknown);
      return;
    }
    bool allSafe = true;
    for (int k = 0; k < m.rank; ++k) {
      const Form& dig = (*digits)[static_cast<size_t>(k)];
      Form over = addForms(dig, dimFormOf(m, k), -1);
      if (proveMax(dig, -1) || proveMin(over, 0)) {
        record(site, Class::Violating,
               "element access is provably out of bounds");
        return;
      }
      allSafe &= proveMin(dig, 0) && proveMax(over, -1);
    }
    record(site, allSafe ? Class::Safe : Class::Unknown);
  }

  void classifyCallSite(const Expr& e, const State& st) {
    const std::string& c = e.s;
    if (c == "initMatrix") {
      bool allSafe = true;
      for (size_t i = 1; i < e.args.size(); ++i) {
        Form d = evalInt(*e.args[i], st);
        if (proveMax(d, -1)) {
          record(&e, Class::Violating,
                 "matrix allocation extent is provably negative");
          return;
        }
        allSafe &= proveMin(d, 0);
      }
      record(&e, allSafe ? Class::Safe : Class::Unknown);
      return;
    }
    if (c == "checkMatrixMeta") {
      MatInfo src = evalMat(*e.args[0], st);
      Form elemF = evalInt(*e.args[1], st);
      Form rankF = evalInt(*e.args[2], st);
      if (!isConst(elemF) || !isConst(rankF)) {
        record(&e, Class::Unknown);
        return;
      }
      auto wantE = static_cast<int32_t>(elemF->c);
      auto wantR = static_cast<int32_t>(rankF->c);
      if ((src.elem >= 0 && src.elem != wantE) ||
          (src.rank >= 0 && src.rank != wantR)) {
        record(&e, Class::Violating,
               "matrix value provably violates the declared element/rank");
        return;
      }
      record(&e, src.vid != 0 && src.elem == wantE && src.rank == wantR
                     ? Class::Safe
                     : Class::Unknown);
      return;
    }
    if (c == "checkGenBounds") {
      Form hi = evalInt(*e.args[0], st);
      Form dim = evalInt(*e.args[1], st);
      Form over = addForms(hi, dim, -1);
      if (proveMin(over, 1)) {
        record(&e, Class::Violating,
               "genarray generator bound provably exceeds the result shape");
        return;
      }
      record(&e, proveMax(over, 0) ? Class::Safe : Class::Unknown);
      return;
    }
  }

  void classifyMatArith(const Expr& e, const State& st) {
    MatInfo a = evalMat(*e.args[0], st);
    MatInfo b = evalMat(*e.args[1], st);
    if (e.k == Expr::K::Arith && e.aop == ir::ArithOp::Mul) {
      // matmul: rank-2 operands, equal elems, inner dims agree.
      Form inner = addForms(dimFormOf(a, 1), dimFormOf(b, 0), -1);
      if ((a.rank >= 0 && a.rank != 2) || (b.rank >= 0 && b.rank != 2) ||
          (a.elem >= 0 && b.elem >= 0 && a.elem != b.elem) ||
          (isConst(inner) && inner->c != 0)) {
        record(&e, Class::Violating,
               "matmul operands provably have incompatible shapes");
        return;
      }
      bool safe = a.rank == 2 && b.rank == 2 && a.elem >= 0 &&
                  a.elem == b.elem && isConst(inner) && inner->c == 0;
      if (!safe && a.rank == 2 && b.rank == 2 && a.elem >= 0 &&
          a.elem == b.elem)
        safe = formEq(dimFormOf(a, 1), dimFormOf(b, 0));
      record(&e, safe ? Class::Safe : Class::Unknown);
      return;
    }
    // Elementwise (and matrix comparisons): identical shape + elem.
    if (a.vid != 0 && a.vid == b.vid) {
      record(&e, Class::Safe);
      return;
    }
    if ((a.rank >= 0 && b.rank >= 0 && a.rank != b.rank) ||
        (a.elem >= 0 && b.elem >= 0 && a.elem != b.elem)) {
      record(&e, Class::Violating,
             "elementwise operands provably differ in shape");
      return;
    }
    if (a.rank >= 0 && a.rank == b.rank) {
      for (int d = 0; d < a.rank; ++d) {
        Form diff = addForms(dimFormOf(a, d), dimFormOf(b, d), -1);
        if (isConst(diff) && diff->c != 0) {
          record(&e, Class::Violating,
                 "elementwise operands provably differ in shape");
          return;
        }
      }
    }
    bool safe = a.rank >= 0 && a.rank == b.rank && a.elem >= 0 &&
                a.elem == b.elem;
    if (safe)
      for (int d = 0; d < a.rank; ++d)
        safe &= formEq(dimFormOf(a, d), dimFormOf(b, d));
    record(&e, safe ? Class::Safe : Class::Unknown);
  }

  /// Classifies every guard site inside `e` (including selector and call
  /// argument subexpressions) against the current state.
  void classifyExpr(const Expr& e, const State& st) {
    for (const auto& a : e.args)
      if (a) classifyExpr(*a, st);
    for (const auto& d : e.dims) {
      if (d.a) classifyExpr(*d.a, st);
      if (d.b) classifyExpr(*d.b, st);
    }
    switch (e.k) {
      case Expr::K::DimSize: {
        MatInfo m = evalMat(*e.args[0], st);
        Form dF = evalInt(*e.args[1], st);
        if (!isConst(dF)) {
          record(&e, Class::Unknown);
          break;
        }
        long long d = dF->c;
        if (m.rank >= 0 && (d < 0 || d >= m.rank)) {
          record(&e, Class::Violating,
                 "dimSize dimension is provably out of range for the rank");
          break;
        }
        // The guard checks null + rank only, so identity is not needed:
        // a definitely-initialized value with statically known rank (e.g.
        // a slot rebound each loop iteration) elides too.
        record(&e, (m.vid != 0 || m.init) && m.rank >= 0 && d >= 0 &&
                           d < m.rank
                       ? Class::Safe
                       : Class::Unknown);
        break;
      }
      case Expr::K::LoadFlat:
        classifyFlat(&e, *e.args[0], *e.args[1], st);
        break;
      case Expr::K::Index: {
        MatInfo m = evalMat(*e.args[0], st);
        const char* why = nullptr;
        Class c = classifySelectors(m, e.dims, st, &why);
        record(&e, c, why);
        break;
      }
      case Expr::K::Arith:
      case Expr::K::Cmp:
        if (e.args.size() == 2 && e.args[0]->ty == ir::Ty::Mat &&
            e.args[1]->ty == ir::Ty::Mat)
          classifyMatArith(e, st);
        break;
      case Expr::K::Call:
        classifyCallSite(e, st);
        break;
      default:
        break;
    }
  }

  void classifyIndexStore(const Stmt& s, const State& st) {
    MatInfo m = matAt(st, s.slot);
    const char* why = nullptr;
    Class c = classifySelectors(m, s.dims, st, &why);
    const Expr& value = *s.exprs[0];
    if (value.ty == ir::Ty::Mat && c != Class::Violating) {
      // Matrix-valued assignment additionally checks elem equality and
      // that the selection count matches the value's element count;
      // per-dimension extent equality is a sufficient proof of the latter.
      MatInfo v = evalMat(value, st);
      if (v.elem >= 0 && m.elem >= 0 && v.elem != m.elem) {
        record(&s, Class::Violating,
               "indexed assignment value provably mismatches the target "
               "element kind");
        return;
      }
      if (c == Class::Safe) {
        std::vector<Form> kept;
        bool countable = true;
        for (size_t d = 0; d < s.dims.size(); ++d) {
          const IndexDim& sel = s.dims[d];
          switch (sel.kind) {
            case IndexDim::Kind::Scalar:
              break;
            case IndexDim::Kind::Range: {
              Form a = evalInt(*sel.a, st);
              Form b = evalInt(*sel.b, st);
              kept.push_back(addForms(addForms(b, a, -1), linConst(1), +1));
              break;
            }
            case IndexDim::Kind::All:
              kept.push_back(dimFormOf(m, static_cast<int>(d)));
              break;
            case IndexDim::Kind::Mask:
              countable = false;
              break;
          }
        }
        bool safe = countable && v.elem >= 0 && v.elem == m.elem &&
                    v.rank == static_cast<int32_t>(kept.size());
        if (safe)
          for (size_t d = 0; d < kept.size(); ++d)
            safe &= formEq(kept[d], v.dims[d]);
        c = safe ? Class::Safe : Class::Unknown;
      }
    }
    record(&s, c, why);
  }

  // --- interprocedural summaries ----------------------------------------
  Form translateForm(const Form& f, const Function* callee, const Stmt& call,
                     const State& st,
                     const std::map<uint64_t, int>& paramVidSlot) {
    if (!f) return std::nullopt;
    Form out = linConst(f->c);
    for (const auto& [aid, coef] : f->t) {
      const Atom& at = atoms_[static_cast<size_t>(aid)];
      Form sub;
      if (at.k == Atom::K::Param && at.fn == callee &&
          at.slot >= 0 && at.slot < static_cast<int32_t>(call.exprs.size())) {
        sub = evalInt(*call.exprs[static_cast<size_t>(at.slot)], st);
      } else if (at.k == Atom::K::Dim) {
        auto it = paramVidSlot.find(at.vid);
        if (it != paramVidSlot.end() &&
            it->second < static_cast<int>(call.exprs.size())) {
          MatInfo ai = evalMat(*call.exprs[static_cast<size_t>(it->second)], st);
          sub = dimFormOf(ai, at.dim);
          if (!sub && ai.vid != 0) sub = linAtom(dimAtom(ai.vid, at.dim));
        }
      }
      out = addForms(out, mulForm(sub, coef), +1);
      if (!out) return std::nullopt;
    }
    return out;
  }

  MatInfo translateSummary(const MatInfo& sum, const Function* callee,
                           const Stmt& call, int dstIdx, const State& st) {
    std::map<uint64_t, int> paramVidSlot;
    for (int i = 0; i < static_cast<int>(callee->numParams); ++i) {
      auto it = siteVids_.find({callee, i});
      if (it != siteVids_.end()) paramVidSlot[it->second] = i;
    }
    MatInfo out;
    auto pv = sum.vid != 0 ? paramVidSlot.find(sum.vid) : paramVidSlot.end();
    if (pv != paramVidSlot.end() &&
        pv->second < static_cast<int>(call.exprs.size()))
      out.vid = evalMat(*call.exprs[static_cast<size_t>(pv->second)], st).vid;
    if (out.vid == 0) out.vid = siteVid(&call, dstIdx);
    out.init = true; // a returning call always yields a value
    out.rank = sum.rank;
    out.elem = sum.elem;
    if (out.rank >= 0) {
      out.dims.assign(static_cast<size_t>(out.rank), std::nullopt);
      for (int d = 0; d < out.rank; ++d) {
        Form f = translateForm(sum.dims[static_cast<size_t>(d)], callee, call,
                               st, paramVidSlot);
        out.dims[static_cast<size_t>(d)] =
            f ? f : linAtom(dimAtom(out.vid, d));
      }
    }
    return out;
  }

  // --- the fixpoint engine ----------------------------------------------
  struct Frame {
    std::optional<State> brk, cont;
  };

  static void setInt(State& st, int32_t slot, Form f) {
    st.ints[static_cast<size_t>(slot)] = std::move(f);
  }

  std::optional<State> exec(const Stmt& s, State st) {
    if (s.range.valid()) curRange_ = s.range;
    switch (s.k) {
      case Stmt::K::Block: {
        std::optional<State> cur = std::move(st);
        for (const auto& k : s.kids) {
          if (!k) continue;
          if (!cur) break; // unreachable tail
          cur = exec(*k, std::move(*cur));
        }
        return cur;
      }
      case Stmt::K::If: {
        std::set<uint64_t> fresh;
        freshVids_ = &fresh;
        classifyExpr(*s.exprs[0], st);
        freshVids_ = nullptr;
        scrub(st, fresh);
        State thenIn = st;
        std::optional<State> thenOut = exec(*s.kids[0], std::move(thenIn));
        std::optional<State> elseOut;
        if (s.kids.size() > 1 && s.kids[1])
          elseOut = exec(*s.kids[1], std::move(st));
        else
          elseOut = std::move(st);
        if (!thenOut) return elseOut;
        if (!elseOut) return thenOut;
        joinState(*thenOut, *elseOut);
        return thenOut;
      }
      case Stmt::K::For:
        return execFor(s, std::move(st));
      case Stmt::K::While:
        return execWhile(s, std::move(st));
      case Stmt::K::Ret: {
        std::set<uint64_t> fresh;
        freshVids_ = &fresh;
        for (const auto& e : s.exprs) classifyExpr(*e, st);
        if (summarizing_ && s.exprs.size() == 1 &&
            curFn_->rets.size() == 1 && curFn_->rets[0] == ir::Ty::Mat) {
          MatInfo r = evalMat(*s.exprs[0], st);
          if (!retAcc_)
            retAcc_ = std::move(r);
          else
            joinMat(*retAcc_, r);
        }
        freshVids_ = nullptr;
        return std::nullopt;
      }
      case Stmt::K::Break:
        if (!frames_.empty()) joinInto(frames_.back().brk, st);
        return std::nullopt;
      case Stmt::K::Continue:
        if (!frames_.empty()) joinInto(frames_.back().cont, st);
        return std::nullopt;
      case Stmt::K::Assign: {
        std::set<uint64_t> fresh;
        freshVids_ = &fresh;
        classifyExpr(*s.exprs[0], st);
        ir::Ty ty = curFn_->locals[static_cast<size_t>(s.slot)].ty;
        Form iv;
        MatInfo mv;
        if (ty == ir::Ty::I32 || ty == ir::Ty::Bool)
          iv = evalInt(*s.exprs[0], st);
        else if (ty == ir::Ty::Mat)
          mv = evalMat(*s.exprs[0], st);
        freshVids_ = nullptr;
        scrub(st, fresh);
        if (ty == ir::Ty::I32 || ty == ir::Ty::Bool)
          setInt(st, s.slot, std::move(iv));
        else if (ty == ir::Ty::Mat)
          st.mats[static_cast<size_t>(s.slot)] = std::move(mv);
        return st;
      }
      case Stmt::K::IndexStore: {
        std::set<uint64_t> fresh;
        freshVids_ = &fresh;
        for (const auto& d : s.dims) {
          if (d.a) classifyExpr(*d.a, st);
          if (d.b) classifyExpr(*d.b, st);
        }
        classifyExpr(*s.exprs[0], st);
        classifyIndexStore(s, st);
        freshVids_ = nullptr;
        scrub(st, fresh);
        return st;
      }
      case Stmt::K::StoreFlat: {
        std::set<uint64_t> fresh;
        freshVids_ = &fresh;
        classifyExpr(*s.exprs[0], st);
        classifyExpr(*s.exprs[1], st);
        // The store's bounds guard is the same flat-offset check as a
        // load; classify against the target slot's matrix.
        {
          ir::Expr tmp; // virtual Var for the target handle
          tmp.k = Expr::K::Var;
          tmp.ty = ir::Ty::Mat;
          tmp.slot = s.slot;
          classifyFlat(&s, tmp, *s.exprs[0], st);
        }
        freshVids_ = nullptr;
        scrub(st, fresh);
        return st;
      }
      case Stmt::K::CallStmt: {
        std::set<uint64_t> fresh;
        freshVids_ = &fresh;
        classifyExpr(*s.exprs[0], st);
        freshVids_ = nullptr;
        scrub(st, fresh);
        return st;
      }
      case Stmt::K::CallAssign:
        return execCallAssign(s, std::move(st));
    }
    return st;
  }

  State execCallAssign(const Stmt& s, State st) {
    std::set<uint64_t> fresh;
    freshVids_ = &fresh;
    for (const auto& e : s.exprs) classifyExpr(*e, st);
    const Function* callee = mod_.find(s.callee);
    std::vector<std::pair<int32_t, MatInfo>> matDsts;
    for (size_t i = 0; i < s.dsts.size(); ++i) {
      int32_t dst = s.dsts[i];
      if (curFn_->locals[static_cast<size_t>(dst)].ty != ir::Ty::Mat) continue;
      MatInfo v;
      auto sum = callee ? retSummary_.find(callee) : retSummary_.end();
      if (callee && s.dsts.size() == 1 && sum != retSummary_.end() &&
          s.exprs.size() == callee->numParams) {
        v = translateSummary(sum->second, callee, s, static_cast<int>(i), st);
      } else {
        v.vid = siteVid(&s, static_cast<int>(i));
        v.init = true;
        // The destination's declared type bounds the returned value.
        const ir::Local& l = curFn_->locals[static_cast<size_t>(dst)];
        v.rank = l.matRank;
        v.elem = l.matElem;
        if (v.rank >= 0)
          for (int d = 0; d < v.rank; ++d)
            v.dims.push_back(linAtom(dimAtom(v.vid, d)));
      }
      matDsts.emplace_back(dst, std::move(v));
    }
    freshVids_ = nullptr;
    scrub(st, fresh);
    for (int32_t dst : s.dsts)
      if (curFn_->locals[static_cast<size_t>(dst)].ty == ir::Ty::I32 ||
          curFn_->locals[static_cast<size_t>(dst)].ty == ir::Ty::Bool)
        setInt(st, dst, std::nullopt);
    for (auto& [dst, v] : matDsts) st.mats[static_cast<size_t>(dst)] = std::move(v);
    return st;
  }

  std::optional<State> execFor(const Stmt& s, State st) {
    std::set<uint64_t> fresh;
    freshVids_ = &fresh;
    classifyExpr(*s.exprs[0], st);
    classifyExpr(*s.exprs[1], st);
    Form lo = evalInt(*s.exprs[0], st);
    Form hiEx = evalInt(*s.exprs[1], st);
    freshVids_ = nullptr;
    scrub(st, fresh);

    int la = -1;
    Form indForm;
    if (!indVarWritten_.count(&s)) {
      la = loopAtom(&s);
      auto [it, first] = loopRanges_.try_emplace(&s, LoopRange{lo, hiEx});
      if (!first) {
        joinForm(it->second.lo, lo);
        joinForm(it->second.hiEx, hiEx);
      }
      indForm = linAtom(la);
    }

    State acc = st;
    setInt(acc, s.slot, indForm);
    std::optional<State> brkTotal;
    bool stable = false;
    for (int round = 0; round < 64; ++round) {
      frames_.push_back({});
      std::optional<State> out = exec(*s.kids[0], acc);
      Frame fr = std::move(frames_.back());
      frames_.pop_back();
      bool changed = false;
      if (out) {
        widenLoop(*out, la);
        setInt(*out, s.slot, indForm);
        changed |= joinState(acc, *out);
      }
      if (fr.cont) {
        widenLoop(*fr.cont, la);
        setInt(*fr.cont, s.slot, indForm);
        changed |= joinState(acc, *fr.cont);
      }
      if (fr.brk) {
        widenLoop(*fr.brk, la);
        joinInto(brkTotal, *fr.brk);
      }
      if (!changed) {
        stable = true;
        break;
      }
    }
    if (!stable) poisoned_ = true;

    // acc subsumes the zero-iterations path (it was seeded from the
    // pre-loop state and only ever joined).
    State exit = std::move(acc);
    if (brkTotal) joinState(exit, *brkTotal);
    setInt(exit, s.slot, std::nullopt);
    return exit;
  }

  std::optional<State> execWhile(const Stmt& s, State st) {
    State acc = std::move(st);
    std::optional<State> brkTotal;
    bool stable = false;
    for (int round = 0; round < 64; ++round) {
      std::set<uint64_t> fresh;
      freshVids_ = &fresh;
      classifyExpr(*s.exprs[0], acc);
      freshVids_ = nullptr;
      scrub(acc, fresh);
      frames_.push_back({});
      std::optional<State> out = exec(*s.kids[0], acc);
      Frame fr = std::move(frames_.back());
      frames_.pop_back();
      bool changed = false;
      if (out) changed |= joinState(acc, *out);
      if (fr.cont) changed |= joinState(acc, *fr.cont);
      if (fr.brk) joinInto(brkTotal, *fr.brk);
      if (!changed) {
        stable = true;
        break;
      }
    }
    if (!stable) poisoned_ = true;
    State exit = std::move(acc);
    if (brkTotal) joinState(exit, *brkTotal);
    return exit;
  }

  // --- per-function driver ----------------------------------------------
  void analyzeFunction(const Function& f) {
    curFn_ = &f;
    curRange_ = SourceRange{};
    poisoned_ = false;
    fnClass_.clear();
    fnViol_.clear();
    retAcc_.reset();
    frames_.clear();

    State st;
    st.ints.assign(f.locals.size(), std::nullopt);
    st.mats.assign(f.locals.size(), MatInfo{});
    for (size_t i = 0; i < f.numParams; ++i) {
      const ir::Local& l = f.locals[i];
      if (l.ty == ir::Ty::I32) {
        st.ints[i] = linAtom(paramAtom(&f, static_cast<int32_t>(i)));
      } else if (l.ty == ir::Ty::Mat) {
        MatInfo m;
        m.vid = siteVid(&f, static_cast<int>(i));
        // Same definite-initialization assumption the vid encodes: callers
        // pass evaluated (non-null) matrix values.
        m.init = true;
        m.rank = l.matRank;
        m.elem = l.matElem;
        if (m.rank >= 0)
          for (int d = 0; d < m.rank; ++d)
            m.dims.push_back(linAtom(dimAtom(m.vid, d)));
        st.mats[i] = std::move(m);
      }
    }
    if (f.body) exec(*f.body, std::move(st));

    if (poisoned_) {
      retAcc_.reset();
      fnClass_.clear();
      fnViol_.clear();
      return;
    }
    if (summarizing_) {
      if (retAcc_)
        retSummary_[&f] = *retAcc_;
      else
        retSummary_.erase(&f);
    }
    if (recording_) {
      for (auto& [site, c] : fnClass_) classMap_[site] = c;
      for (auto& [site, v] : fnViol_) violations_[site] = v;
    }
  }

  // --- static site enumeration ------------------------------------------
  void enumerateSites(const Function& f, std::vector<const void*>& out,
                      std::map<const void*, SourceRange>& ranges) {
    if (!f.body) return;
    SourceRange cur{};
    forEachStmt(*f.body, [&](const Stmt& s) {
      // Preorder visit gives a best-effort source range for sites inside
      // synthesized glue (the nearest stamped ancestor/predecessor).
      if (s.range.valid()) cur = s.range;
      if (s.k == Stmt::K::StoreFlat || s.k == Stmt::K::IndexStore) {
        out.push_back(&s);
        ranges[&s] = cur;
      }
      forEachStmtExpr(s, [&](const Expr& e) {
        bool site = false;
        switch (e.k) {
          case Expr::K::DimSize:
          case Expr::K::LoadFlat:
          case Expr::K::Index:
            site = true;
            break;
          case Expr::K::Arith:
          case Expr::K::Cmp:
            site = e.args.size() == 2 && e.args[0]->ty == ir::Ty::Mat &&
                   e.args[1]->ty == ir::Ty::Mat;
            break;
          case Expr::K::Call:
            site = e.s == "initMatrix" || e.s == "checkMatrixMeta" ||
                   e.s == "checkGenBounds";
            break;
          default:
            break;
        }
        if (site) {
          out.push_back(&e);
          ranges[&e] = cur;
        }
      });
    });
  }

  // --- members -----------------------------------------------------------
  const ir::Module& mod_;
  ShapeCheckOptions opts_;
  ir::GuardPlan& plan_;
  DiagnosticEngine& diags_;

  std::vector<Atom> atoms_;
  std::map<std::pair<uint64_t, int32_t>, int> dimAtomIds_;
  std::map<std::pair<const Function*, int32_t>, int> paramAtomIds_;
  std::map<const Stmt*, int> loopAtomIds_;
  std::map<std::pair<const void*, int>, uint64_t> siteVids_;
  uint64_t nextVid_ = 1;
  std::set<uint64_t>* freshVids_ = nullptr;

  std::map<const Stmt*, LoopRange> loopRanges_;
  std::set<const Stmt*> indVarWritten_;

  const Function* curFn_ = nullptr;
  SourceRange curRange_{};
  std::vector<Frame> frames_;
  bool poisoned_ = false;

  bool summarizing_ = false;
  bool recording_ = false;
  std::optional<MatInfo> retAcc_;
  std::map<const Function*, MatInfo> retSummary_;

  std::map<const void*, Class> fnClass_;
  std::map<const void*, Class> classMap_;
  struct Violation {
    std::string msg;
    SourceRange range;
  };
  std::map<const void*, Violation> fnViol_;
  std::map<const void*, Violation> violations_;
};

ShapeCheckStats Checker::run() {
  // Precompute For loops whose body rewrites the induction variable (no
  // induction atom for those) and the syntactically borrowed parameters.
  for (const auto& f : mod_.functions) {
    if (!f->body) continue;
    forEachStmt(*f->body, [&](const Stmt& s) {
      if (s.k != Stmt::K::For) return;
      forEachStmt(*s.kids[0], [&](const Stmt& inner) {
        for (int32_t w : writtenSlots(inner))
          if (w == s.slot) indVarWritten_.insert(&s);
      });
    });
    std::set<int32_t> written;
    forEachStmt(*f->body, [&](const Stmt& s) {
      for (int32_t w : writtenSlots(s)) written.insert(w);
    });
    for (size_t i = 0; i < f->numParams; ++i)
      if (f->locals[i].ty == ir::Ty::Mat &&
          !written.count(static_cast<int32_t>(i)))
        plan_.borrowedParams[f.get()].insert(static_cast<int32_t>(i));
  }

  // Pass 1: return-shape summaries to a (bounded) fixpoint. Every round
  // starts from over-approximate callee facts, so the final round's
  // summaries are sound even if the bound is hit.
  summarizing_ = true;
  for (int round = 0; round < 4; ++round) {
    auto before = retSummary_;
    loopRanges_.clear();
    for (const auto& f : mod_.functions) analyzeFunction(*f);
    if (retSummary_ == before) break;
  }
  summarizing_ = false;

  // Pass 2: classification under the final summaries.
  recording_ = true;
  loopRanges_.clear();
  for (const auto& f : mod_.functions) analyzeFunction(*f);
  recording_ = false;

  // Census + plan. Sites the fixpoint never reached (dead code, poisoned
  // functions) default to Unknown: guard kept, nothing reported.
  ShapeCheckStats stats;
  std::vector<const void*> sites;
  std::map<const void*, SourceRange> siteRanges;
  for (const auto& f : mod_.functions) enumerateSites(*f, sites, siteRanges);
  stats.guardsTotal = sites.size();
  std::vector<std::pair<SourceRange, std::string>> viols;
  for (const void* site : sites) {
    auto it = classMap_.find(site);
    Class c = it == classMap_.end() ? Class::Unknown : it->second;
    if (c == Class::Safe) {
      plan_.safe.insert(site);
      ++stats.guardsSafe;
    } else if (c == Class::Violating) {
      ++stats.guardsViolating;
      auto v = violations_.find(site);
      SourceRange r = v != violations_.end() && v->second.range.valid()
                          ? v->second.range
                          : siteRanges[site];
      viols.emplace_back(r, v != violations_.end()
                                ? v->second.msg
                                : "guard provably fails");
    }
  }
  for (const auto& [fn, slots] : plan_.borrowedParams)
    stats.borrowedParams += slots.size();

  if (opts_.warnShape || opts_.strictShape) {
    std::stable_sort(viols.begin(), viols.end(),
                     [](const auto& a, const auto& b) {
                       if (a.first.begin.file != b.first.begin.file)
                         return a.first.begin.file < b.first.begin.file;
                       return a.first.begin.offset < b.first.begin.offset;
                     });
    DiagnosticEngine::OriginScope origin(diags_, "matrix");
    for (const auto& [r, msg] : viols) {
      if (opts_.strictShape)
        diags_.error(r, msg + " (use --bounds-checks=on to keep the runtime "
                            "guard semantics; this access can never succeed)");
      else
        diags_.warning(r, msg);
    }
  }
  return stats;
}

// --- genarray full-write detection (ISSUE 9) -------------------------------
//
// Matches the exact statement sequence lowerWith emits for a genarray:
//
//   res = initMatrix(elem, sh_0, ..., sh_{r-1});
//   checkGenBounds(hi_0, sh_0); ... checkGenBounds(hi_{r-1}, sh_{r-1});
//   for (i_0 = lo_0; i_0 < hi_0; i_0++)
//     ...
//       for (i_{r-1} = lo_{r-1}; i_{r-1} < hi_{r-1}; i_{r-1}++) {
//         <element temps>; res.data[flat] = v;
//       }
//
// and proves lo_d == 0 and hi_d == sh_d for every dimension, in which case
// the nest stores to every element of `res` and the backends may allocate
// the result uninitialized instead of zero-filling it (the interpreter via
// Matrix::uninit, the C emitter via mmx_allocv_u). Anything the optimizer
// or a transformation tail reshaped simply fails the match — a
// conservative "keep the zero-fill".

/// Expressions whose value depends only on the referenced local slots
/// (no matrix reads, no calls) — safe to compare structurally.
bool pureScalarExpr(const ir::Expr& e) {
  switch (e.k) {
    case ir::Expr::K::ConstI:
    case ir::Expr::K::Var:
      break;
    case ir::Expr::K::Arith:
    case ir::Expr::K::Neg:
    case ir::Expr::K::Cast:
      break;
    default:
      return false;
  }
  for (const auto& a : e.args)
    if (!a || !pureScalarExpr(*a)) return false;
  return true;
}

bool sameExpr(const ir::Expr& a, const ir::Expr& b) {
  if (a.k != b.k || a.ty != b.ty) return false;
  switch (a.k) {
    case ir::Expr::K::ConstI:
      if (a.i != b.i) return false;
      break;
    case ir::Expr::K::Var:
      if (a.slot != b.slot) return false;
      break;
    case ir::Expr::K::Arith:
      if (a.aop != b.aop) return false;
      break;
    case ir::Expr::K::Neg:
    case ir::Expr::K::Cast:
      break;
    default:
      return false;
  }
  if (a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); ++i)
    if (!sameExpr(*a.args[i], *b.args[i])) return false;
  return true;
}

void collectSlotRefs(const ir::Expr& e, std::set<int32_t>& out) {
  if (e.k == ir::Expr::K::Var) out.insert(e.slot);
  for (const auto& a : e.args)
    if (a) collectSlotRefs(*a, out);
  for (const auto& d : e.dims) {
    if (d.a) collectSlotRefs(*d.a, out);
    if (d.b) collectSlotRefs(*d.b, out);
  }
}

/// Does `s` (recursively) store to local `slot` — including as a loop
/// variable, a CallAssign destination, or the target of an IndexStore /
/// StoreFlat (content mutation counts: the slot no longer holds the value
/// it had)?
bool writesSlot(const ir::Stmt& s, int32_t slot) {
  switch (s.k) {
    case ir::Stmt::K::Assign:
    case ir::Stmt::K::IndexStore:
    case ir::Stmt::K::StoreFlat:
    case ir::Stmt::K::For:
      if (s.slot == slot) return true;
      break;
    case ir::Stmt::K::CallAssign:
      for (int32_t d : s.dsts)
        if (d == slot) return true;
      break;
    default:
      break;
  }
  for (const auto& k : s.kids)
    if (k && writesSlot(*k, slot)) return true;
  return false;
}

bool exprTouchesSlot(const ir::Expr& e, int32_t slot) {
  if (e.k == ir::Expr::K::Var && e.slot == slot) return true;
  for (const auto& a : e.args)
    if (a && exprTouchesSlot(*a, slot)) return true;
  for (const auto& d : e.dims) {
    if (d.a && exprTouchesSlot(*d.a, slot)) return true;
    if (d.b && exprTouchesSlot(*d.b, slot)) return true;
  }
  return false;
}

/// Any mention of `slot` inside `s` — read or write — other than as the
/// store target of the single exempted StoreFlat (whose index/value
/// operands are still checked).
bool touchesSlot(const ir::Stmt& s, int32_t slot, const ir::Stmt* exempt) {
  switch (s.k) {
    case ir::Stmt::K::Assign:
    case ir::Stmt::K::IndexStore:
    case ir::Stmt::K::StoreFlat:
    case ir::Stmt::K::For:
      if (&s != exempt && s.slot == slot) return true;
      break;
    case ir::Stmt::K::CallAssign:
      for (int32_t d : s.dsts)
        if (d == slot) return true;
      break;
    default:
      break;
  }
  for (const auto& e : s.exprs)
    if (e && exprTouchesSlot(*e, slot)) return true;
  for (const auto& d : s.dims) {
    if (d.a && exprTouchesSlot(*d.a, slot)) return true;
    if (d.b && exprTouchesSlot(*d.b, slot)) return true;
  }
  for (const auto& k : s.kids)
    if (k && touchesSlot(*k, slot, exempt)) return true;
  return false;
}

/// Break / Continue / Ret anywhere would let an iteration skip the store.
bool hasEarlyExit(const ir::Stmt& s) {
  if (s.k == ir::Stmt::K::Break || s.k == ir::Stmt::K::Continue ||
      s.k == ir::Stmt::K::Ret)
    return true;
  for (const auto& k : s.kids)
    if (k && hasEarlyExit(*k)) return true;
  return false;
}

/// The last write to `slot` before `end` in this kid list is `slot = 0`.
bool provedZero(const std::vector<ir::StmtPtr>& kids, size_t end,
                int32_t slot) {
  for (size_t i = end; i-- > 0;) {
    const ir::Stmt& st = *kids[i];
    if (st.k == ir::Stmt::K::Assign && st.slot == slot)
      return st.exprs.size() == 1 &&
             st.exprs[0]->k == ir::Expr::K::ConstI && st.exprs[0]->i == 0;
    if (writesSlot(st, slot)) return false;
  }
  return false;
}

/// `a` and `b` provably hold the same value at statement `end`: their
/// latest defining statements are simple assignments of structurally
/// equal pure expressions (or one is a plain copy of the other), and
/// nothing in between (or after, up to `end`) rewrites either slot or
/// any slot the expressions read.
bool provedEqual(const std::vector<ir::StmtPtr>& kids, size_t end, int32_t a,
                 int32_t b) {
  if (a == b) return true;
  size_t defA = end, defB = end;
  const ir::Expr *ea = nullptr, *eb = nullptr;
  for (size_t i = end; i-- > 0;) {
    const ir::Stmt& st = *kids[i];
    if (!ea && writesSlot(st, a)) {
      if (st.k != ir::Stmt::K::Assign || st.slot != a ||
          st.exprs.size() != 1 || !pureScalarExpr(*st.exprs[0]))
        return false;
      ea = st.exprs[0].get();
      defA = i;
    }
    if (!eb && writesSlot(st, b)) {
      if (st.k != ir::Stmt::K::Assign || st.slot != b ||
          st.exprs.size() != 1 || !pureScalarExpr(*st.exprs[0]))
        return false;
      eb = st.exprs[0].get();
      defB = i;
    }
    if (ea && eb) break;
  }
  // Copy chains: `b = a` (or `a = b`) makes the pair equal as long as the
  // copied-from slot is not rewritten before `end` — which the watched-set
  // scan below enforces.
  bool copyOfEachOther =
      (eb && eb->k == ir::Expr::K::Var && eb->slot == a && defB > defA) ||
      (ea && ea->k == ir::Expr::K::Var && ea->slot == b && defA > defB);
  if (!copyOfEachOther) {
    if (!ea || !eb || !sameExpr(*ea, *eb)) return false;
  }
  std::set<int32_t> watched;
  if (ea) collectSlotRefs(*ea, watched);
  if (eb) collectSlotRefs(*eb, watched);
  watched.insert(a);
  watched.insert(b);
  size_t first = defA < defB ? defA : defB;
  for (size_t i = first + 1; i < end; ++i) {
    if (i == defA || i == defB) continue;
    for (int32_t v : watched)
      if (writesSlot(*kids[i], v)) return false;
  }
  return true;
}

void matchGenarrayFullWrites(const std::vector<ir::StmtPtr>& kids,
                             ir::GuardPlan& plan) {
  for (size_t i = 0; i < kids.size(); ++i) {
    // Anchor: a For nest whose innermost body ends in a StoreFlat. Walk
    // down collecting (loopVar, lo, hi) per level; every bound must be a
    // plain local so the proofs below can reason about it.
    const ir::Stmt& nest = *kids[i];
    if (nest.k != ir::Stmt::K::For) continue;
    std::vector<int32_t> lo, hi, iv;
    const ir::Stmt* loop = &nest;
    const ir::Stmt* store = nullptr;
    bool nestOk = true;
    while (true) {
      if (loop->k != ir::Stmt::K::For || loop->exprs.size() != 2 ||
          loop->exprs[0]->k != ir::Expr::K::Var ||
          loop->exprs[1]->k != ir::Expr::K::Var || loop->kids.empty() ||
          !loop->kids[0]) {
        nestOk = false;
        break;
      }
      lo.push_back(loop->exprs[0]->slot);
      hi.push_back(loop->exprs[1]->slot);
      iv.push_back(loop->slot);
      const ir::Stmt* body = loop->kids[0].get();
      if (body->k == ir::Stmt::K::Block && body->kids.size() == 1 &&
          body->kids[0] && body->kids[0]->k == ir::Stmt::K::For) {
        body = body->kids[0].get();
      }
      if (body->k == ir::Stmt::K::For) {
        loop = body;
        continue;
      }
      // Innermost: the unconditional store must be the last statement.
      if (body->k == ir::Stmt::K::StoreFlat) {
        store = body;
      } else if (body->k == ir::Stmt::K::Block && !body->kids.empty() &&
                 body->kids.back() &&
                 body->kids.back()->k == ir::Stmt::K::StoreFlat) {
        store = body->kids.back().get();
      }
      break;
    }
    size_t rank = lo.size();
    if (!nestOk || !store || rank == 0) continue;
    int32_t res = store->slot;

    // The defining allocation: the last write to `res` before the nest
    // must be `res = initMatrix(elem, dim_0, ..., dim_{rank-1})` with
    // plain-local dims, and `res` untouched (and the path unbroken — no
    // way to jump past the nest) in between.
    size_t defIdx = kids.size();
    for (size_t j = i; j-- > 0;) {
      if (writesSlot(*kids[j], res)) {
        defIdx = j;
        break;
      }
    }
    if (defIdx >= kids.size()) continue;
    const ir::Stmt& def = *kids[defIdx];
    if (def.k != ir::Stmt::K::Assign || def.exprs.size() != 1) continue;
    const ir::Expr& init = *def.exprs[0];
    if (init.k != ir::Expr::K::Call || init.s != "initMatrix") continue;
    if (init.args.size() != rank + 1) continue;
    if (init.args[0]->k != ir::Expr::K::ConstI) continue;
    std::vector<int32_t> dim;
    bool dimsOk = true;
    for (size_t d = 0; d < rank; ++d) {
      if (init.args[1 + d]->k != ir::Expr::K::Var) {
        dimsOk = false;
        break;
      }
      dim.push_back(init.args[1 + d]->slot);
    }
    if (!dimsOk) continue;
    bool betweenOk = true;
    for (size_t j = defIdx + 1; j < i && betweenOk; ++j)
      betweenOk = !touchesSlot(*kids[j], res, nullptr) &&
                  !hasEarlyExit(*kids[j]);
    if (!betweenOk) continue;

    // The store's flat index must be the canonical row-major form
    //   ((iv_0 * s_1 + iv_1) * s_2 + ...) + iv_{rank-1}
    // with each stride s_d provably equal to the allocated dim_d.
    std::vector<int32_t> stride(rank, -1); // stride[0] unused
    const ir::Expr* flat = store->exprs[0].get();
    bool flatOk = true;
    for (size_t d = rank; d-- > 1;) {
      flatOk = flat->k == ir::Expr::K::Arith &&
               flat->aop == ir::ArithOp::Add && flat->args.size() == 2 &&
               flat->args[1]->k == ir::Expr::K::Var &&
               flat->args[1]->slot == iv[d] &&
               flat->args[0]->k == ir::Expr::K::Arith &&
               flat->args[0]->aop == ir::ArithOp::Mul &&
               flat->args[0]->args.size() == 2 &&
               flat->args[0]->args[1]->k == ir::Expr::K::Var;
      if (!flatOk) break;
      stride[d] = flat->args[0]->args[1]->slot;
      flat = flat->args[0]->args[0].get();
    }
    flatOk = flatOk && flat->k == ir::Expr::K::Var && flat->slot == iv[0];
    if (!flatOk) continue;
    // Distinct loop variables (a reused var would alias two dims).
    std::set<int32_t> ivSet(iv.begin(), iv.end());
    if (ivSet.size() != rank) continue;

    if (hasEarlyExit(nest)) continue;
    if (touchesSlot(nest, res, store)) continue;

    // Bound proofs: lo_d == 0 and hi_d == dim_d (the allocated extent),
    // strides match the allocated dims, and none of those slots move —
    // not between the allocation and the nest, and not inside the nest
    // (inner bounds are re-read every outer iteration).
    bool proven = true;
    for (size_t d = 0; d < rank && proven; ++d) {
      proven = provedZero(kids, i, lo[d]) &&
               provedEqual(kids, i, hi[d], dim[d]) &&
               (d == 0 || provedEqual(kids, i, stride[d], dim[d])) &&
               !writesSlot(nest, lo[d]) && !writesSlot(nest, hi[d]) &&
               (d == 0 || !writesSlot(nest, stride[d]));
      for (size_t j = defIdx + 1; j < i && proven; ++j)
        proven = !writesSlot(*kids[j], dim[d]);
    }
    if (!proven) continue;

    plan.fullyWritten.insert(def.exprs[0].get());
  }
}

void walkFullWrites(const ir::Stmt& s, ir::GuardPlan& plan) {
  if (s.k == ir::Stmt::K::Block) matchGenarrayFullWrites(s.kids, plan);
  for (const auto& k : s.kids)
    if (k) walkFullWrites(*k, plan);
}

} // namespace

ShapeCheckStats checkShapes(const ir::Module& m, ir::GuardPlan& plan,
                            DiagnosticEngine& diags,
                            const ShapeCheckOptions& opts) {
  Checker ck(m, opts, plan, diags);
  ShapeCheckStats st = ck.run();
  for (const auto& f : m.functions)
    if (f->body) walkFullWrites(*f->body, plan);
  return st;
}

} // namespace mmx::analysis
