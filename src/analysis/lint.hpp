// IR-level lints on the dataflow engine:
//
//  * definite initialization (forward, must-analysis): warns when a named
//    local may be read before any assignment reaches it;
//  * dead stores (backward liveness): warns when a scalar assignment is
//    never observed — not read before the next write or the function end;
//  * allocated-but-dead matrices (ISSUE 6): warns when a whole-matrix
//    temporary is allocated (and possibly stored into element by element)
//    but no statement ever reads its handle or contents — the classic
//    wasted with-loop result. Toggled by -W[no-]dead-matrix.
//
// Both report through the DiagnosticEngine against the Stmt source ranges
// stamped during lowering. Compiler temporaries (slots named "%...") and
// assignments kept for their side effects (IO calls) are exempt. The
// lints are advisory: drivers run them under `mmc --analyze`, never as
// part of plain translation.
#pragma once

#include "ir/ir.hpp"
#include "support/diag.hpp"

namespace mmx::analysis {

struct LintOptions {
  bool deadMatrix = true; // -W[no-]dead-matrix: allocated-but-dead matrices
};

/// Runs the lints over one function.
void lintFunction(const ir::Function& f, DiagnosticEngine& diags,
                  const LintOptions& opts = {});

/// Runs the lints over every function of the module.
void lintModule(const ir::Module& m, DiagnosticEngine& diags,
                const LintOptions& opts = {});

} // namespace mmx::analysis
