// A reusable forward/backward dataflow framework over the structured loop
// IR (ir::Stmt/ir::Expr trees). In the spirit of Farzan & Kincaid's
// compositional program analysis, the engine computes per-fragment
// summaries bottom-up over the statement tree instead of iterating a CFG:
// blocks compose transfer functions sequentially, branches join, and loops
// run their body to a fixpoint (the domains used here are finite-height,
// so iteration converges; a cap guards against pathological clients).
//
// Clients implement a small "transfer" policy class:
//
//   struct MyTransfer {
//     using State = ...;                         // the abstract state
//     State copy(const State&);                  // clone a state
//     bool join(State& into, const State& from); // true if `into` changed
//     void transfer(const ir::Stmt& s, State&);  // leaf statements only
//   };
//
// and run it with ForwardEngine<MyTransfer> (states flow with execution)
// or BackwardEngine<MyTransfer> (states flow against it — for liveness
// style analyses). The engine owns all control-flow plumbing: statement
// order, if-joins, loop fixpoints, and break/continue/return edges.
//
// Three passes are built on top of this engine: parallel-safety / race
// detection (parsafe.hpp), definite-initialization + dead-store lints
// (lint.hpp), and constant/shape propagation (constprop.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ir/ir.hpp"

namespace mmx::analysis {

// ---------------------------------------------------------------------------
// Syntactic helpers shared by all passes.

/// Preorder walk over every sub-expression of `e`, including IndexDim
/// selector expressions.
void forEachExpr(const ir::Expr& e, const std::function<void(const ir::Expr&)>& f);

/// Walks every expression evaluated directly by `s` (not by its kids):
/// operands, selectors, call arguments.
void forEachStmtExpr(const ir::Stmt& s,
                     const std::function<void(const ir::Expr&)>& f);

/// Preorder walk over `root` and every nested statement.
void forEachStmt(const ir::Stmt& root,
                 const std::function<void(const ir::Stmt&)>& f);

/// Mutable preorder walk.
void forEachStmt(ir::Stmt& root, const std::function<void(ir::Stmt&)>& f);

/// Slots read by the expressions `s` itself evaluates. For IndexStore /
/// StoreFlat the target slot is included (the matrix handle is read to
/// reach the buffer). Deduplicated, unordered.
std::vector<int32_t> readSlots(const ir::Stmt& s);

/// Slots whose *frame value* this statement writes: Assign and For write
/// `slot`, CallAssign writes `dsts`. StoreFlat/IndexStore mutate a matrix
/// buffer, not the frame slot, and are deliberately excluded — buffer
/// effects are parsafe's concern.
std::vector<int32_t> writtenSlots(const ir::Stmt& s);

/// True if any sub-expression of `e` reads `slot`.
bool exprReadsSlot(const ir::Expr& e, int32_t slot);

/// Structural equality of expression trees (same kinds, operators, slots,
/// constants, selectors). Used to match read indexes against write
/// indexes (`A.data[e] = A.data[e] + 1` is race-free when the two `e`s
/// are the same expression).
bool exprEquals(const ir::Expr& a, const ir::Expr& b);

/// Structural equality of index selector lists.
bool dimsEqual(const std::vector<ir::IndexDim>& a,
               const std::vector<ir::IndexDim>& b);

// ---------------------------------------------------------------------------
// Engine internals shared by both directions.

namespace detail {
/// Loop-body fixpoints are re-run until the entry state stabilizes; the
/// domains used here have small finite height, so this cap is only a
/// guard against a client with an infinitely ascending domain.
inline constexpr int kMaxLoopIterations = 16;
} // namespace detail

// ---------------------------------------------------------------------------
// Forward engine: states flow in execution order.

template <class T>
class ForwardEngine {
public:
  using State = typename T::State;

  explicit ForwardEngine(T& t) : t_(t) {}

  /// Runs the analysis over `root` starting from `in`; returns the state
  /// on normal fall-through exit (nullopt when every path breaks or
  /// returns). States reaching a `Ret` are joined into `exitState`.
  std::optional<State> run(const ir::Stmt& root, State in) {
    exitState.reset();
    return exec(root, std::move(in));
  }

  /// Join of all states that reached a Ret during the last run().
  std::optional<State> exitState;

private:
  struct LoopCtx {
    std::optional<State> breakOut;    // joined states from Break
    std::optional<State> continueOut; // joined states from Continue
  };

  void joinInto(std::optional<State>& into, const State& from) {
    if (!into)
      into = t_.copy(from);
    else
      t_.join(*into, from);
  }

  // Returns the fall-through state, or nullopt if control never falls
  // through (break/continue/return on every path).
  std::optional<State> exec(const ir::Stmt& s, State in) {
    switch (s.k) {
      case ir::Stmt::K::Block: {
        std::optional<State> cur = std::move(in);
        for (const auto& k : s.kids) {
          if (!k) continue;
          if (!cur) break; // unreachable tail
          cur = exec(*k, std::move(*cur));
        }
        return cur;
      }
      case ir::Stmt::K::If: {
        t_.transfer(s, in); // the condition's reads
        State thenIn = t_.copy(in);
        std::optional<State> thenOut = exec(*s.kids[0], std::move(thenIn));
        std::optional<State> elseOut;
        if (s.kids.size() > 1 && s.kids[1])
          elseOut = exec(*s.kids[1], std::move(in));
        else
          elseOut = std::move(in); // no else: condition-false falls through
        if (!thenOut) return elseOut;
        if (!elseOut) return thenOut;
        t_.join(*thenOut, *elseOut);
        return thenOut;
      }
      case ir::Stmt::K::For:
      case ir::Stmt::K::While:
        return execLoop(s, std::move(in));
      case ir::Stmt::K::Ret:
        t_.transfer(s, in);
        joinInto(exitState, in);
        return std::nullopt;
      case ir::Stmt::K::Break:
        t_.transfer(s, in);
        if (!loops_.empty()) joinInto(loops_.back().breakOut, in);
        return std::nullopt;
      case ir::Stmt::K::Continue:
        t_.transfer(s, in);
        if (!loops_.empty()) joinInto(loops_.back().continueOut, in);
        return std::nullopt;
      default:
        t_.transfer(s, in);
        return std::optional<State>(std::move(in));
    }
  }

  std::optional<State> execLoop(const ir::Stmt& s, State in) {
    // Header effects (bounds / condition evaluated, loop var written).
    t_.transfer(s, in);

    // The state entering the body is the join of the pre-loop state and
    // every back edge (body fall-through + continue). Iterate to fixpoint.
    State entry = t_.copy(in);
    std::optional<State> afterBody;
    std::optional<State> breakOut;
    for (int iter = 0; iter < detail::kMaxLoopIterations; ++iter) {
      loops_.push_back({});
      afterBody = exec(*s.kids[0], t_.copy(entry));
      LoopCtx ctx = std::move(loops_.back());
      loops_.pop_back();

      bool changed = false;
      if (afterBody) changed |= t_.join(entry, *afterBody);
      if (ctx.continueOut) changed |= t_.join(entry, *ctx.continueOut);
      if (ctx.breakOut) joinInto(breakOut, *ctx.breakOut);
      // Loop var is rewritten before each iteration.
      t_.transfer(s, entry);
      if (!changed) break;
    }

    // Exit = zero-iterations path joined with the stable body exit and
    // any break.
    std::optional<State> out(std::move(in));
    if (afterBody) t_.join(*out, *afterBody);
    if (breakOut) t_.join(*out, *breakOut);
    return out;
  }

  T& t_;
  std::vector<LoopCtx> loops_;
};

// ---------------------------------------------------------------------------
// Backward engine: states flow against execution order (liveness-style).
// `transfer` sees each leaf statement with the state that held *after* it
// and must rewrite it into the state holding before it.

template <class T>
class BackwardEngine {
public:
  using State = typename T::State;

  explicit BackwardEngine(T& t) : t_(t) {}

  /// Runs backward over `root` with `out` holding after the last
  /// statement; returns the state before the first. `atExit` is the state
  /// assumed at every Ret (usually empty liveness).
  State run(const ir::Stmt& root, State out, State atExit) {
    atExit_ = t_.copy(atExit);
    return exec(root, std::move(out));
  }

private:
  struct LoopCtx {
    State breakState;    // state after the loop (what Break jumps to)
    State continueState; // state at the loop header (what Continue jumps to)
  };

  State exec(const ir::Stmt& s, State out) {
    switch (s.k) {
      case ir::Stmt::K::Block: {
        State cur = std::move(out);
        for (size_t i = s.kids.size(); i-- > 0;) {
          if (!s.kids[i]) continue;
          cur = exec(*s.kids[i], std::move(cur));
        }
        return cur;
      }
      case ir::Stmt::K::If: {
        State thenIn = exec(*s.kids[0], t_.copy(out));
        if (s.kids.size() > 1 && s.kids[1]) {
          State elseIn = exec(*s.kids[1], std::move(out));
          t_.join(thenIn, elseIn);
        } else {
          t_.join(thenIn, out);
        }
        t_.transfer(s, thenIn); // the condition's reads
        return thenIn;
      }
      case ir::Stmt::K::For:
      case ir::Stmt::K::While:
        return execLoop(s, std::move(out));
      case ir::Stmt::K::Ret: {
        State in = t_.copy(atExit_);
        t_.transfer(s, in);
        return in;
      }
      case ir::Stmt::K::Break: {
        State in = loops_.empty() ? t_.copy(atExit_)
                                  : t_.copy(loops_.back().breakState);
        t_.transfer(s, in);
        return in;
      }
      case ir::Stmt::K::Continue: {
        State in = loops_.empty() ? t_.copy(atExit_)
                                  : t_.copy(loops_.back().continueState);
        t_.transfer(s, in);
        return in;
      }
      default:
        t_.transfer(s, out);
        return out;
    }
  }

  State execLoop(const ir::Stmt& s, State out) {
    // header holds before each iteration's body; it is also what a
    // Continue jumps to (via the next header evaluation) and feeds the
    // back edge. Iterate until the header state stabilizes.
    State header = t_.copy(out); // zero-iterations: exit state
    t_.transfer(s, header);      // bounds read / loop var written
    for (int iter = 0; iter < detail::kMaxLoopIterations; ++iter) {
      loops_.push_back({t_.copy(out), t_.copy(header)});
      State bodyOut = t_.copy(header); // back edge: body exit re-enters header
      t_.join(bodyOut, out);           // ... or leaves the loop
      State bodyIn = exec(*s.kids[0], std::move(bodyOut));
      loops_.pop_back();

      State newHeader = std::move(bodyIn);
      t_.join(newHeader, out); // zero iterations
      t_.transfer(s, newHeader);
      bool changed = t_.join(header, newHeader);
      if (!changed) break;
    }
    return header;
  }

  T& t_;
  State atExit_{};
  std::vector<LoopCtx> loops_;
};

// ---------------------------------------------------------------------------
// A small reusable state: a slot set (bitset over f.locals).

struct SlotSet {
  std::vector<bool> bits;

  explicit SlotSet(size_t n = 0) : bits(n, false) {}
  bool get(int32_t i) const {
    return i >= 0 && static_cast<size_t>(i) < bits.size() && bits[i];
  }
  void set(int32_t i, bool v = true) {
    if (i >= 0 && static_cast<size_t>(i) < bits.size()) bits[i] = v;
  }
  /// Union; returns true when `this` changed.
  bool unionWith(const SlotSet& o) {
    bool changed = false;
    for (size_t i = 0; i < bits.size() && i < o.bits.size(); ++i)
      if (o.bits[i] && !bits[i]) bits[i] = changed = true;
    return changed;
  }
  /// Intersection; returns true when `this` changed.
  bool intersectWith(const SlotSet& o) {
    bool changed = false;
    for (size_t i = 0; i < bits.size(); ++i) {
      bool v = bits[i] && (i < o.bits.size() && o.bits[i]);
      if (v != bits[i]) bits[i] = v, changed = true;
    }
    return changed;
  }
};

} // namespace mmx::analysis
