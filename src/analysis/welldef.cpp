#include "analysis/welldef.hpp"

#include <set>

namespace mmx::analysis {

using attr::AttrKind;
using attr::Registry;
using grammar::Grammar;

WelldefResult checkWellDefined(const Grammar& g, const Registry& reg) {
  WelldefResult r;

  for (const auto& decl : reg.attributes()) {
    std::set<std::string> occurs(decl.occurs.begin(), decl.occurs.end());
    if (occurs.empty()) continue; // attribute never attached to the grammar

    if (decl.kind == AttrKind::Synthesized) {
      for (const auto& p : g.productions()) {
        if (!occurs.count(std::string(g.nonterminalName(p.lhs)))) continue;
        if (reg.findSyn(p.name, decl.id) || decl.hasDefault) continue;
        r.problems.push_back(
            "synthesized attribute '" + decl.name + "' (from '" +
            decl.extension + "') has no equation on production '" + p.name +
            "' (from '" + p.extension + "') and no default");
      }
    } else {
      for (const auto& p : g.productions()) {
        for (size_t i = 0; i < p.rhs.size(); ++i) {
          const grammar::GSym& s = p.rhs[i];
          if (s.isTerm()) continue;
          if (!occurs.count(std::string(g.nonterminalName(s.idx)))) continue;
          if (reg.findInh(p.name, i, decl.id) || decl.autocopy) continue;
          r.problems.push_back(
              "inherited attribute '" + decl.name + "' (from '" +
              decl.extension + "') is not supplied to child " +
              std::to_string(i) + " of production '" + p.name + "' (from '" +
              p.extension + "') and is not autocopy");
        }
      }
    }
  }

  r.ok = r.problems.empty();
  return r;
}

WelldefResult checkModularWellDefined(const Grammar& g, const Registry& reg) {
  WelldefResult r = checkWellDefined(g, reg);

  // Which fragments contribute productions to each nonterminal?
  auto fragmentsOf = [&](const std::string& nt) {
    std::set<std::string> frags;
    for (const auto& p : g.productions())
      if (g.nonterminalName(p.lhs) == nt) frags.insert(p.extension);
    return frags;
  };

  for (const auto& decl : reg.attributes()) {
    if (decl.extension == "host") continue;
    bool covered = decl.hasDefault ||
                   (decl.kind == AttrKind::Inherited && decl.autocopy);
    if (covered) continue;
    for (const auto& nt : decl.occurs) {
      for (const auto& frag : fragmentsOf(nt)) {
        if (frag == decl.extension) continue;
        r.problems.push_back(
            "attribute '" + decl.name + "' of extension '" + decl.extension +
            "' occurs on '" + nt + "', which has productions from '" + frag +
            "'; a default equation is required for blind composition");
      }
    }
  }

  r.ok = r.problems.empty();
  return r;
}

} // namespace mmx::analysis
