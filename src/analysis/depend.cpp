#include "analysis/depend.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>

#include "analysis/dataflow.hpp"

// Implementation notes — the documented approximations
// ----------------------------------------------------
// Index expressions are polynomials over interned loop-invariant atoms
// plus loop-variable terms. Two access polynomials may collide iff the
// dependence equation  Σ C_L·d_L (+ aux terms) = Δ  has an integer
// solution within the loop bounds; the solver groups terms by atom
// monomial and peels levels top-down, which is exact for the row-major
// offsets the lowering emits. Deliberate, documented assumptions:
//
//  (1) Atoms are >= 1. Atoms stand for matrix extents, strides, and
//      trip bounds; zero/negative extents make the nest empty, so any
//      answer is vacuously safe. Mirrors parsafe's assumption that
//      symbolic strides are nonzero.
//
//  (2) Distinct incoming matrix handles do not alias. Parameters and
//      pre-nest locals get distinct roots; copies propagate roots and
//      fresh allocations mint new ones. Mirrors parsafe's call-summary
//      treatment of parameters.
//
//  (3) Same-iteration (distance-zero) pairs are ignored: every clause
//      the verifier checks permutes or partitions loop iterations but
//      preserves the statement order within one iteration.
//
// Everything that falls outside the model — non-affine indexes, slots
// with multiple reaching definitions, accesses under While loops, calls
// without analyzable summaries — degrades to "unknown" vectors, never to
// silence.

namespace mmx::analysis {

namespace {

// ---------------------------------------------------------------------------
// Builtin effect table (mirrors parsafe.cpp).

struct BuiltinEffect {
  bool io = false;        // observable side effect, or mutable runtime state
  bool metaOnly = false;  // reads matrix metadata (shape) only, not elements
  bool aliasArg0 = false; // returns its first argument's handle
};

const BuiltinEffect* builtinEffect(const std::string& name) {
  static const std::map<std::string, BuiltinEffect> table = {
      {"writeMatrix", {true, false, false}},
      {"printInt", {true, false, false}},
      {"printFloat", {true, false, false}},
      {"printBool", {true, false, false}},
      {"printStr", {true, false, false}},
      {"printShape", {true, true, false}},
      {"rcLive", {true, true, false}},
      {"refCount", {true, true, false}},
      {"checkMatrixMeta", {false, true, true}},
      {"checkGenBounds", {false, true, false}},
      {"readMatrix", {false, false, false}},
      {"initMatrix", {false, false, false}},
      {"cloneMatrix", {false, false, false}},
      {"connComp", {false, false, false}},
      {"detectEddies", {false, false, false}},
      {"synthSsh", {false, false, false}},
      {"matToFloat", {false, false, false}},
      {"numThreads", {false, false, false}},
      {"sqrtF", {false, false, false}},
      {"absF", {false, false, false}},
      {"absI", {false, false, false}},
  };
  auto it = table.find(name);
  return it == table.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Atoms and polynomials.

struct AtomInfo {
  enum class K : uint8_t {
    Opaque,    // nest-invariant local slot (single value during the nest)
    Dim,       // dimSize(root, dim) of a matrix root
    Param,     // scalar parameter (call-summary domain)
    ParamDim,  // dimSize(param, dim) (call-summary domain)
  };
  K k = K::Opaque;
  int a = -1;  // slot / root / param index
  int b = -1;  // dim
};

using Mono = std::vector<int>;  // sorted multiset of atom ids

struct PKey {
  int loop = -1;  // loop id, or -1 for loop-free terms
  Mono m;
  bool operator<(const PKey& o) const {
    if (loop != o.loop) return loop < o.loop;
    return m < o.m;
  }
  bool operator==(const PKey& o) const { return loop == o.loop && m == o.m; }
};

constexpr long long kCoeffCap = 1LL << 45;
constexpr size_t kMonoDegreeCap = 4;

struct Poly {
  bool ok = true;
  std::map<PKey, long long> t;  // no zero coefficients stored

  static Poly bad() {
    Poly p;
    p.ok = false;
    return p;
  }
  static Poly cst(long long c) {
    Poly p;
    if (c) p.t[PKey{}] = c;
    return p;
  }
  static Poly unit(PKey k) {
    Poly p;
    p.t[std::move(k)] = 1;
    return p;
  }
  static Poly atom(int id) { return unit(PKey{-1, {id}}); }
  static Poly loopVar(int id) { return unit(PKey{id, {}}); }

  bool isConst(long long* v = nullptr) const {
    if (!ok) return false;
    if (t.empty()) {
      if (v) *v = 0;
      return true;
    }
    if (t.size() == 1 && t.begin()->first == PKey{}) {
      if (v) *v = t.begin()->second;
      return true;
    }
    return false;
  }
  bool hasLoop() const {
    for (auto& [k, c] : t)
      if (k.loop >= 0) return true;
    return false;
  }
  bool operator==(const Poly& o) const { return ok && o.ok && t == o.t; }
};

Poly add(const Poly& a, const Poly& b) {
  if (!a.ok || !b.ok) return Poly::bad();
  Poly r = a;
  for (auto& [k, c] : b.t) {
    long long& v = r.t[k];
    v += c;
    if (std::llabs(v) > kCoeffCap) return Poly::bad();
    if (v == 0) r.t.erase(k);
  }
  return r;
}

Poly mulC(const Poly& a, long long c) {
  if (!a.ok) return Poly::bad();
  Poly r;
  if (c == 0) return r;
  for (auto& [k, v] : a.t) {
    long long nv = v * c;
    if (std::llabs(nv) > kCoeffCap) return Poly::bad();
    r.t[k] = nv;
  }
  return r;
}

Poly sub(const Poly& a, const Poly& b) { return add(a, mulC(b, -1)); }

Poly mul(const Poly& a, const Poly& b) {
  if (!a.ok || !b.ok) return Poly::bad();
  if (a.hasLoop() && b.hasLoop()) return Poly::bad();
  Poly r;
  for (auto& [ka, ca] : a.t)
    for (auto& [kb, cb] : b.t) {
      PKey k;
      k.loop = ka.loop >= 0 ? ka.loop : kb.loop;
      k.m = ka.m;
      k.m.insert(k.m.end(), kb.m.begin(), kb.m.end());
      std::sort(k.m.begin(), k.m.end());
      if (k.m.size() > kMonoDegreeCap) return Poly::bad();
      long long& v = r.t[k];
      v += ca * cb;
      if (std::llabs(v) > kCoeffCap) return Poly::bad();
      if (v == 0) r.t.erase(k);
    }
  return r;
}

/// Coefficient of loop `id` as a loop-free polynomial.
Poly coeffOf(const Poly& p, int id) {
  Poly r;
  for (auto& [k, c] : p.t)
    if (k.loop == id) r.t[PKey{-1, k.m}] = c;
  return r;
}

Poly loopFreePart(const Poly& p) {
  Poly r;
  for (auto& [k, c] : p.t)
    if (k.loop < 0) r.t[k] = c;
  return r;
}

Poly monoPoly(const Mono& m) { return Poly::unit(PKey{-1, m}); }

/// Proves p >= 1 for every valuation with atoms >= 1 (assumption (1)):
/// every non-constant coefficient must be >= 0, and the sum of all
/// coefficients (each monomial contributes at least its coefficient)
/// plus the constant must reach 1.
bool proveGE1(const Poly& p) {
  if (!p.ok || p.hasLoop()) return false;
  long long total = 0;
  for (auto& [k, c] : p.t) {
    if (!k.m.empty() && c < 0) return false;
    total += c;
  }
  return total >= 1;
}

/// a contains b as a multiset.
bool monoDivides(const Mono& b, const Mono& a) {
  return std::includes(a.begin(), a.end(), b.begin(), b.end());
}

// ---------------------------------------------------------------------------
// Call summaries: per-parameter affine access lists.

struct PAccess {
  int param = -1;
  bool write = false;
  Poly idx;  // over Param/ParamDim atoms only
};

struct PSummary {
  bool hasIO = false;
  std::vector<char> wholeRead, wholeWrite;  // per parameter
  std::vector<char> retMayAlias;            // per parameter
  std::vector<PAccess> accesses;
};

constexpr size_t kSummaryAccessCap = 16;

// ---------------------------------------------------------------------------
// A matrix access inside a nest.

struct Access {
  std::vector<int> chain;  // enclosing loop ids, outermost first
  std::set<int> roots;
  bool write = false;
  Poly idx;  // !ok => whole-matrix access
  std::string mat;
  SourceRange range;
};

struct LoopRec {
  const ir::Stmt* stmt = nullptr;
  int id = -1;
  Poly trip;  // upper bound on (hi - lo); bad when unknown
  bool haveConstTrip = false;
  long long constTrip = 0;
  bool haveLoConst = false;
  long long loConst = 0;
  // split-group: this loop's variable combines with groupOut's as
  // value = groupFactor * out + this, bounded by groupBound.
  int groupOut = -1;
  long long groupFactor = 0;
  Poly groupBound;
};

}  // namespace

// ---------------------------------------------------------------------------
// Impl: atom interner + summaries.

struct Depend::Impl {
  const ir::Module& mod;

  std::map<std::tuple<int, int, int>, int> atomIds;
  std::vector<AtomInfo> atoms;

  std::map<const ir::Function*, std::unique_ptr<PSummary>> summaries;
  std::set<const ir::Function*> inProgress;

  explicit Impl(const ir::Module& m) : mod(m) {}

  int atomId(AtomInfo::K k, int a, int b) {
    auto key = std::make_tuple(static_cast<int>(k), a, b);
    auto it = atomIds.find(key);
    if (it != atomIds.end()) return it->second;
    int id = static_cast<int>(atoms.size());
    atoms.push_back({k, a, b});
    atomIds.emplace(key, id);
    return id;
  }

  const PSummary* summaryFor(const ir::Function& f);
};

namespace {

// ---------------------------------------------------------------------------
// The access-collecting walker, shared by nest analysis (loop terms and
// chains tracked) and summary computation (param atoms, no loop terms).

struct Walker {
  Depend::Impl& D;
  const ir::Function& fn;
  bool summaryMode;
  PSummary* out = nullptr;  // summary mode sink

  // Nest-invariant resolution (nest mode).
  std::set<int32_t> writtenInNest;
  std::map<int32_t, int> writeCount;
  std::map<int32_t, const ir::Expr*> onlyRhs;
  std::set<int32_t> resolvableWrite;  // single write dominating the nest
  std::map<int32_t, Poly> invMemo;
  std::set<int32_t> resolving;
  bool seenNest = false;
  std::set<const ir::Stmt*> ancestors;  // stmts containing the nest
  const ir::Stmt* nest = nullptr;

  std::map<int32_t, Poly> env;
  std::map<int32_t, std::set<int>> roots;
  int freshRoot = 0;

  std::vector<LoopRec> stack;
  std::map<int, LoopRec> loopsById;
  std::vector<const ir::Stmt*> loopOrder;
  int nextLoopId = 0;

  std::vector<Access> accesses;
  bool hasIO = false;
  bool hasEscape = false;
  int whileDepth = 0;
  SourceRange curRange{};

  Walker(Depend::Impl& d, const ir::Function& f, bool summary)
      : D(d), fn(f), summaryMode(summary) {}

  // --- invariant pre-pass ------------------------------------------------

  void findAncestors(const ir::Stmt& st) {
    if (&st == nest) return;
    for (auto& k : st.kids)
      if (k) {
        if (k.get() == nest) {
          ancestors.insert(&st);
          return;
        }
        findAncestors(*k);
        if (ancestors.count(k.get())) {
          ancestors.insert(&st);
          return;
        }
      }
  }

  void bump(int32_t slot, const ir::Expr* rhs, bool resolvable) {
    int c = ++writeCount[slot];
    if (c == 1) {
      onlyRhs[slot] = rhs;
      if (resolvable && rhs) resolvableWrite.insert(slot);
    } else {
      onlyRhs.erase(slot);
      resolvableWrite.erase(slot);
    }
  }

  /// Counts writes in `st`; `dom` is true while the walk stays on a path
  /// of statements that execute (in order) before the nest runs.
  void countWrites(const ir::Stmt& st, bool dom) {
    if (&st == nest) seenNest = true;
    bool resolvable = dom && !seenNest;
    switch (st.k) {
      case ir::Stmt::K::Assign:
        bump(st.slot, st.exprs.empty() ? nullptr : st.exprs[0].get(),
             resolvable);
        break;
      case ir::Stmt::K::For:
        bump(st.slot, nullptr, false);
        break;
      case ir::Stmt::K::CallAssign:
        for (int32_t d : st.dsts) bump(d, nullptr, false);
        break;
      default:
        break;
    }
    for (auto& k : st.kids) {
      if (!k) continue;
      bool kidDom =
          dom && (st.k == ir::Stmt::K::Block || k.get() == nest ||
                  ancestors.count(k.get()) > 0);
      countWrites(*k, kidDom);
    }
  }

  /// Value of a slot that is never written during the nest: resolve the
  /// dominating single assignment to a polynomial, or fall back to an
  /// opaque atom (sound — the value is fixed while the nest runs).
  Poly resolveInv(int32_t slot) {
    auto it = invMemo.find(slot);
    if (it != invMemo.end()) return it->second;
    if (resolving.count(slot)) return Poly::bad();
    resolving.insert(slot);
    Poly r;
    if (resolvableWrite.count(slot)) {
      r = evalInv(*onlyRhs[slot]);
      if (!r.ok) r = Poly::atom(D.atomId(AtomInfo::K::Opaque, slot, -1));
    } else {
      r = Poly::atom(D.atomId(AtomInfo::K::Opaque, slot, -1));
    }
    resolving.erase(slot);
    invMemo.emplace(slot, r);
    return r;
  }

  /// Evaluates an expression in the pre-nest environment (invariant
  /// slots only).
  Poly evalInv(const ir::Expr& e) {
    switch (e.k) {
      case ir::Expr::K::ConstI:
      case ir::Expr::K::ConstB:
        return Poly::cst(e.i);
      case ir::Expr::K::Var:
        if (e.ty != ir::Ty::I32) return Poly::bad();
        if (writtenInNest.count(e.slot)) return Poly::bad();
        return resolveInv(e.slot);
      case ir::Expr::K::Neg:
        return mulC(evalInv(*e.args[0]), -1);
      case ir::Expr::K::Arith: {
        if (e.aop == ir::ArithOp::Add)
          return add(evalInv(*e.args[0]), evalInv(*e.args[1]));
        if (e.aop == ir::ArithOp::Sub)
          return sub(evalInv(*e.args[0]), evalInv(*e.args[1]));
        if (e.aop == ir::ArithOp::Mul)
          return mul(evalInv(*e.args[0]), evalInv(*e.args[1]));
        return Poly::bad();
      }
      case ir::Expr::K::DimSize:
        return dimPoly(e);
      default:
        return Poly::bad();
    }
  }

  // --- evaluation --------------------------------------------------------

  std::set<int>& rootsOf(int32_t slot) {
    auto it = roots.find(slot);
    if (it == roots.end())
      it = roots.emplace(slot, std::set<int>{-slot - 1}).first;
    return it->second;
  }

  Poly dimPoly(const ir::Expr& e) {
    if (e.args.size() < 2 || e.args[0]->k != ir::Expr::K::Var ||
        e.args[1]->k != ir::Expr::K::ConstI)
      return Poly::bad();
    int32_t slot = e.args[0]->slot;
    int dim = e.args[1]->i;
    const std::set<int>& rs = rootsOf(slot);
    if (rs.size() != 1) return Poly::bad();
    int r = *rs.begin();
    if (summaryMode) {
      int p = -r - 1;
      if (r < 0 && p < static_cast<int>(fn.numParams))
        return Poly::atom(D.atomId(AtomInfo::K::ParamDim, p, dim));
      return Poly::bad();
    }
    return Poly::atom(D.atomId(AtomInfo::K::Dim, r, dim));
  }

  Poly slotPoly(int32_t slot) {
    auto it = env.find(slot);
    if (it != env.end()) return it->second;
    if (summaryMode) {
      if (slot < static_cast<int32_t>(fn.numParams) &&
          fn.locals[slot].ty == ir::Ty::I32)
        return Poly::atom(D.atomId(AtomInfo::K::Param, slot, -1));
      return Poly::bad();
    }
    if (writtenInNest.count(slot)) return Poly::bad();
    return resolveInv(slot);
  }

  Poly ev(const ir::Expr& e) {
    switch (e.k) {
      case ir::Expr::K::ConstI:
      case ir::Expr::K::ConstB:
        return Poly::cst(e.i);
      case ir::Expr::K::Var:
        return e.ty == ir::Ty::I32 ? slotPoly(e.slot) : Poly::bad();
      case ir::Expr::K::Neg:
        return mulC(ev(*e.args[0]), -1);
      case ir::Expr::K::Arith:
        if (e.aop == ir::ArithOp::Add) return add(ev(*e.args[0]), ev(*e.args[1]));
        if (e.aop == ir::ArithOp::Sub) return sub(ev(*e.args[0]), ev(*e.args[1]));
        if (e.aop == ir::ArithOp::Mul) return mul(ev(*e.args[0]), ev(*e.args[1]));
        return Poly::bad();
      case ir::Expr::K::DimSize:
        return dimPoly(e);
      default:
        return Poly::bad();
    }
  }

  // --- access recording --------------------------------------------------

  std::vector<int> chainIds() const {
    std::vector<int> c;
    c.reserve(stack.size());
    for (auto& r : stack) c.push_back(r.id);
    return c;
  }

  void record(int32_t matSlot, bool write, Poly idx) {
    if (whileDepth > 0) idx = Poly::bad();  // iteration count unknown
    const std::set<int>& rs = rootsOf(matSlot);
    if (summaryMode) {
      for (int r : rs) {
        if (r >= 0) continue;  // callee-local buffer, invisible to callers
        int p = -r - 1;
        if (p >= static_cast<int>(fn.numParams)) continue;
        if (!idx.ok || out->accesses.size() >= kSummaryAccessCap) {
          (write ? out->wholeWrite : out->wholeRead)[p] = 1;
        } else {
          out->accesses.push_back({p, write, idx});
        }
      }
      return;
    }
    Access a;
    a.chain = chainIds();
    a.roots = rs;
    a.write = write;
    a.idx = std::move(idx);
    a.mat = matSlot >= 0 && matSlot < static_cast<int32_t>(fn.locals.size())
                ? fn.locals[matSlot].name
                : "?";
    a.range = curRange;
    accesses.push_back(std::move(a));
  }

  void reads(const ir::Expr& e) {
    switch (e.k) {
      case ir::Expr::K::Var:
        if (e.ty == ir::Ty::Mat) record(e.slot, false, Poly::bad());
        return;
      case ir::Expr::K::LoadFlat: {
        reads(*e.args[1]);
        Poly idx = ev(*e.args[1]);
        if (e.args[0]->k == ir::Expr::K::Var)
          record(e.args[0]->slot, false, std::move(idx));
        else
          reads(*e.args[0]);
        return;
      }
      case ir::Expr::K::Index: {
        for (auto& d : e.dims) {
          if (d.a) reads(*d.a);
          if (d.b) reads(*d.b);
        }
        if (e.args[0]->k == ir::Expr::K::Var)
          record(e.args[0]->slot, false, Poly::bad());
        else
          reads(*e.args[0]);
        return;
      }
      case ir::Expr::K::DimSize:
        return;  // metadata only
      case ir::Expr::K::Call: {
        const BuiltinEffect* be = builtinEffect(e.s);
        if (!be || be->io) hasIO = true;
        for (auto& a : e.args) {
          if (!a) continue;
          if (a->ty == ir::Ty::Mat) {
            if (be && be->metaOnly) continue;
            if (a->k == ir::Expr::K::Var)
              record(a->slot, false, Poly::bad());
            else
              reads(*a);
          } else {
            reads(*a);
          }
        }
        return;
      }
      default:
        for (auto& a : e.args)
          if (a) reads(*a);
        return;
    }
  }

  // --- statement walk ----------------------------------------------------

  void invalidateWrites(const ir::Stmt& body) {
    forEachStmt(body, [&](const ir::Stmt& s) {
      for (int32_t w : writtenSlots(s)) env[w] = Poly::bad();
    });
  }

  void mergeEnvFrom(std::map<int32_t, Poly>& other) {
    for (auto& [k, v] : other) {
      auto it = env.find(k);
      if (it == env.end() || !(it->second == v)) env[k] = Poly::bad();
    }
    for (auto& [k, v] : env)
      if (!other.count(k)) v = Poly::bad();
  }

  void walk(const ir::Stmt& s) {
    SourceRange prev = curRange;
    if (s.range.valid()) curRange = s.range;
    walkInner(s);
    curRange = prev;
  }

  void walkInner(const ir::Stmt& s) {
    switch (s.k) {
      case ir::Stmt::K::Block:
        for (auto& k : s.kids)
          if (k) walk(*k);
        break;
      case ir::Stmt::K::Assign: {
        const ir::Expr& rhs = *s.exprs[0];
        bool isMat = s.slot >= 0 &&
                     s.slot < static_cast<int32_t>(fn.locals.size()) &&
                     fn.locals[s.slot].ty == ir::Ty::Mat;
        if (isMat) {
          if (rhs.k == ir::Expr::K::Var && rhs.ty == ir::Ty::Mat) {
            roots[s.slot] = rootsOf(rhs.slot);  // handle copy, no element read
          } else {
            reads(rhs);
            const BuiltinEffect* be =
                rhs.k == ir::Expr::K::Call ? builtinEffect(rhs.s) : nullptr;
            if (be && be->aliasArg0 && !rhs.args.empty() &&
                rhs.args[0]->k == ir::Expr::K::Var)
              roots[s.slot] = rootsOf(rhs.args[0]->slot);
            else
              roots[s.slot] = {freshRoot++};
          }
        } else {
          reads(rhs);
          env[s.slot] = ev(rhs);
        }
        break;
      }
      case ir::Stmt::K::StoreFlat: {
        reads(*s.exprs[0]);
        reads(*s.exprs[1]);
        record(s.slot, true, ev(*s.exprs[0]));
        break;
      }
      case ir::Stmt::K::IndexStore: {
        for (auto& d : s.dims) {
          if (d.a) reads(*d.a);
          if (d.b) reads(*d.b);
        }
        if (!s.exprs.empty()) reads(*s.exprs[0]);
        record(s.slot, true, Poly::bad());
        break;
      }
      case ir::Stmt::K::For:
        walkFor(s);
        break;
      case ir::Stmt::K::While: {
        ++whileDepth;
        invalidateWrites(*s.kids[0]);
        reads(*s.exprs[0]);
        walk(*s.kids[0]);
        invalidateWrites(*s.kids[0]);
        --whileDepth;
        break;
      }
      case ir::Stmt::K::If: {
        reads(*s.exprs[0]);
        auto envSave = env;
        auto rootsSave = roots;
        if (!s.kids.empty() && s.kids[0]) walk(*s.kids[0]);
        auto envThen = std::move(env);
        auto rootsThen = std::move(roots);
        env = std::move(envSave);
        roots = std::move(rootsSave);
        if (s.kids.size() > 1 && s.kids[1]) walk(*s.kids[1]);
        mergeEnvFrom(envThen);
        for (auto& [k, rs] : rootsThen)
          roots[k].insert(rs.begin(), rs.end());
        break;
      }
      case ir::Stmt::K::Ret: {
        if (summaryMode) {
          for (auto& e : s.exprs) {
            if (!e) continue;
            if (e->ty == ir::Ty::Mat) {
              if (e->k == ir::Expr::K::Var) {
                for (int r : rootsOf(e->slot)) {
                  int p = -r - 1;
                  if (r < 0 && p < static_cast<int>(fn.numParams))
                    out->retMayAlias[p] = 1;
                }
              } else {
                reads(*e);
                std::fill(out->retMayAlias.begin(), out->retMayAlias.end(),
                          1);
              }
            } else {
              reads(*e);
            }
          }
        } else {
          hasEscape = true;
          for (auto& e : s.exprs)
            if (e) reads(*e);
        }
        break;
      }
      case ir::Stmt::K::CallStmt:
        reads(*s.exprs[0]);
        break;
      case ir::Stmt::K::CallAssign:
        handleCall(s);
        break;
      case ir::Stmt::K::Break:
        if (!summaryMode) hasEscape = true;
        break;
      case ir::Stmt::K::Continue:
        break;
    }
  }

  void walkFor(const ir::Stmt& s) {
    reads(*s.exprs[0]);
    reads(*s.exprs[1]);

    if (summaryMode) {
      invalidateWrites(*s.kids[0]);
      env[s.slot] = Poly::bad();
      walk(*s.kids[0]);
      invalidateWrites(*s.kids[0]);
      env[s.slot] = Poly::bad();
      return;
    }

    LoopRec rec;
    rec.stmt = &s;
    rec.id = nextLoopId++;
    Poly lo = ev(*s.exprs[0]);
    Poly hi = ev(*s.exprs[1]);
    long long c;
    if (lo.ok && lo.isConst(&c)) {
      rec.haveLoConst = true;
      rec.loConst = c;
    }
    rec.trip = (lo.ok && hi.ok) ? sub(hi, lo) : Poly::bad();

    // split/tile inner-loop pattern: for v in [0, min(N, X - N*outer)).
    const ir::Expr& hiE = *s.exprs[1];
    if (hiE.k == ir::Expr::K::Arith && hiE.aop == ir::ArithOp::Min &&
        hiE.args[0]->k == ir::Expr::K::ConstI && rec.haveLoConst &&
        rec.loConst == 0) {
      long long n = hiE.args[0]->i;
      if (n >= 1) {
        rec.haveConstTrip = true;
        rec.constTrip = n;
        rec.trip = Poly::cst(n);  // hi <= N, lo == 0
        Poly rest = ev(*hiE.args[1]);
        if (rest.ok) {
          // rest must be X - N*L for exactly one active loop L.
          int loopL = -1;
          bool oneLoop = true;
          for (auto& [k, cf] : rest.t) {
            if (k.loop < 0) continue;
            if (loopL >= 0 || !k.m.empty() || cf != -n) {
              oneLoop = false;
              break;
            }
            loopL = k.loop;
          }
          if (oneLoop && loopL >= 0) {
            bool active = false;
            for (auto& r : stack)
              if (r.id == loopL) active = true;
            if (active) {
              Poly x = rest;
              x.t.erase(PKey{loopL, {}});
              if (!x.hasLoop()) {
                rec.groupOut = loopL;
                rec.groupFactor = n;
                rec.groupBound = x;
              }
            }
          }
        }
      }
    }
    if (rec.trip.ok) {
      long long t;
      if (rec.trip.isConst(&t)) {
        rec.haveConstTrip = true;
        rec.constTrip = std::max(t, 0LL);
      }
    }

    invalidateWrites(*s.kids[0]);
    env[s.slot] = Poly::loopVar(rec.id);
    stack.push_back(rec);
    loopsById.emplace(rec.id, rec);
    loopOrder.push_back(&s);
    walk(*s.kids[0]);
    stack.pop_back();
    invalidateWrites(*s.kids[0]);
    env[s.slot] = Poly::bad();
  }

  // --- calls --------------------------------------------------------------

  Poly substAtom(int atomId, const std::vector<Poly>& argPoly,
                 const std::vector<int32_t>& argMatSlot) {
    const AtomInfo& info = D.atoms[atomId];
    switch (info.k) {
      case AtomInfo::K::Param:
        return info.a < static_cast<int>(argPoly.size()) ? argPoly[info.a]
                                                         : Poly::bad();
      case AtomInfo::K::ParamDim: {
        if (info.a >= static_cast<int>(argMatSlot.size()) ||
            argMatSlot[info.a] < 0)
          return Poly::bad();
        int32_t slot = argMatSlot[info.a];
        const std::set<int>& rs = rootsOf(slot);
        if (rs.size() != 1) return Poly::bad();
        if (summaryMode) {
          int p = -*rs.begin() - 1;
          if (*rs.begin() < 0 && p < static_cast<int>(fn.numParams))
            return Poly::atom(D.atomId(AtomInfo::K::ParamDim, p, info.b));
          return Poly::bad();
        }
        return Poly::atom(D.atomId(AtomInfo::K::Dim, *rs.begin(), info.b));
      }
      default:
        return Poly::bad();  // callee-local atoms never appear in summaries
    }
  }

  Poly substPoly(const Poly& p, const std::vector<Poly>& argPoly,
                 const std::vector<int32_t>& argMatSlot) {
    if (!p.ok) return Poly::bad();
    Poly r;
    for (auto& [k, c] : p.t) {
      if (k.loop >= 0) return Poly::bad();
      Poly term = Poly::cst(c);
      for (int a : k.m) {
        term = mul(term, substAtom(a, argPoly, argMatSlot));
        if (!term.ok) return Poly::bad();
      }
      r = add(r, term);
      if (!r.ok) return Poly::bad();
    }
    return r;
  }

  void handleCall(const ir::Stmt& s) {
    const ir::Function* callee = D.mod.find(s.callee);
    const PSummary* sum = callee ? D.summaryFor(*callee) : nullptr;

    std::vector<Poly> argPoly(s.exprs.size(), Poly::bad());
    std::vector<int32_t> argMatSlot(s.exprs.size(), -1);
    for (size_t i = 0; i < s.exprs.size(); ++i) {
      const ir::Expr& a = *s.exprs[i];
      if (a.ty == ir::Ty::Mat) {
        if (a.k == ir::Expr::K::Var)
          argMatSlot[i] = a.slot;
        else
          reads(a);  // matrix-valued temp argument: whole-read its parts
      } else {
        reads(a);
        argPoly[i] = ev(a);
      }
    }

    if (!sum) {
      // Unknown callee (recursive, or body not lowered yet): assume the
      // worst — IO plus whole read/write of every matrix argument.
      hasIO = true;
      for (size_t i = 0; i < s.exprs.size(); ++i)
        if (argMatSlot[i] >= 0) {
          record(argMatSlot[i], false, Poly::bad());
          record(argMatSlot[i], true, Poly::bad());
        }
      for (int32_t d : s.dsts) {
        if (d >= 0 && d < static_cast<int32_t>(fn.locals.size()) &&
            fn.locals[d].ty == ir::Ty::Mat) {
          std::set<int> rs = {freshRoot++};
          for (size_t i = 0; i < s.exprs.size(); ++i)
            if (argMatSlot[i] >= 0) {
              auto& ar = rootsOf(argMatSlot[i]);
              rs.insert(ar.begin(), ar.end());
            }
          roots[d] = std::move(rs);
        } else {
          env[d] = Poly::bad();
        }
      }
      return;
    }

    if (sum->hasIO) hasIO = true;
    for (size_t i = 0; i < sum->wholeRead.size() && i < s.exprs.size(); ++i) {
      if (argMatSlot[i] < 0) continue;
      if (sum->wholeRead[i]) record(argMatSlot[i], false, Poly::bad());
      if (sum->wholeWrite[i]) record(argMatSlot[i], true, Poly::bad());
    }
    for (const PAccess& pa : sum->accesses) {
      if (pa.param < 0 || pa.param >= static_cast<int>(s.exprs.size()) ||
          argMatSlot[pa.param] < 0)
        continue;
      record(argMatSlot[pa.param], pa.write,
             substPoly(pa.idx, argPoly, argMatSlot));
    }
    for (int32_t d : s.dsts) {
      if (d >= 0 && d < static_cast<int32_t>(fn.locals.size()) &&
          fn.locals[d].ty == ir::Ty::Mat) {
        std::set<int> rs = {freshRoot++};
        for (size_t i = 0; i < sum->retMayAlias.size() && i < s.exprs.size();
             ++i)
          if (sum->retMayAlias[i] && argMatSlot[i] >= 0) {
            auto& ar = rootsOf(argMatSlot[i]);
            rs.insert(ar.begin(), ar.end());
          }
        roots[d] = std::move(rs);
      } else {
        env[d] = Poly::bad();
      }
    }
  }
};

// ---------------------------------------------------------------------------
// The dependence-equation solver.

struct SysU {
  long long c = 0;  // single-monomial coefficient
  Mono m;
  bool haveRange = false;
  long long rlo = 0, rhi = 0;  // enumeration range [rlo, rhi]
  Poly ub;                     // |u| <= ub when ok (else unbounded)
  int dLevel = -1;             // distance component (chain position)
  int dLevel2 = -1;            // split-group inner component
};

enum class SolKind : uint8_t { None, Some, Unk };

struct SysResult {
  SolKind k = SolKind::Unk;
  // Per solution: value per unknown (nullopt = unknown/fuzzy).
  std::vector<std::vector<std::optional<long long>>> sols;
};

constexpr size_t kEnumCap = 4096;
constexpr size_t kSolCapPerLevel = 8;
constexpr size_t kSolCapTotal = 8;

SysResult solveSystem(const std::vector<SysU>& us, const Poly& delta) {
  SysResult res;
  if (!delta.ok || delta.hasLoop()) return res;  // Unk

  std::map<Mono, std::vector<size_t>> byMono;
  for (size_t i = 0; i < us.size(); ++i) byMono[us[i].m].push_back(i);
  std::map<Mono, long long> dm;
  for (auto& [k, c] : delta.t) dm[k.m] += c;

  std::set<Mono> levelSet;
  for (auto& [m, v] : byMono) levelSet.insert(m);
  for (auto& [m, c] : dm)
    if (c != 0) levelSet.insert(m);
  if (levelSet.empty()) {
    res.k = SolKind::None;  // 0 = 0 with no unknowns: no distinct-iteration
    return res;             // collision beyond the free/zero components
  }
  std::vector<Mono> levels(levelSet.begin(), levelSet.end());
  std::sort(levels.begin(), levels.end(), [](const Mono& a, const Mono& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a < b;
  });
  for (size_t i = 0; i + 1 < levels.size(); ++i)
    if (!monoDivides(levels[i + 1], levels[i])) return res;  // Unk

  // Dominance: each level's monomial must strictly exceed the largest
  // value the lower levels can contribute —
  //   mono_i >= 1 + sum_j>i |c_u| * ub_u * mono_j + |delta_j| * mono_j.
  for (size_t i = 0; i + 1 < levels.size(); ++i) {
    Poly blow;
    for (size_t j = i + 1; j < levels.size(); ++j) {
      auto it = byMono.find(levels[j]);
      if (it != byMono.end())
        for (size_t u : it->second) {
          Poly ub;
          if (us[u].ub.ok)
            ub = us[u].ub;
          else if (us[u].haveRange)
            ub = Poly::cst(
                std::max(std::llabs(us[u].rlo), std::llabs(us[u].rhi)));
          else
            return res;
          Poly part = mulC(mul(ub, monoPoly(levels[j])), std::llabs(us[u].c));
          if (!part.ok) return res;
          blow = add(blow, part);
        }
      auto dit = dm.find(levels[j]);
      if (dit != dm.end() && dit->second != 0)
        blow = add(blow, mulC(monoPoly(levels[j]), std::llabs(dit->second)));
      if (!blow.ok) return res;
    }
    if (!proveGE1(sub(monoPoly(levels[i]), blow))) return res;  // Unk
  }

  // Per-level solving.
  std::vector<std::vector<std::vector<std::optional<long long>>>> levelSols;
  for (const Mono& lev : levels) {
    std::vector<size_t> uids;
    if (auto it = byMono.find(lev); it != byMono.end()) uids = it->second;
    long long d = 0;
    if (auto it = dm.find(lev); it != dm.end()) d = it->second;

    std::vector<std::vector<std::optional<long long>>> sols;
    if (uids.empty()) {
      if (d != 0) {
        res.k = SolKind::None;
        return res;
      }
      continue;
    }

    bool allRanged = true;
    size_t combos = 1;
    for (size_t u : uids) {
      if (!us[u].haveRange) {
        allRanged = false;
        break;
      }
      long long width = us[u].rhi - us[u].rlo + 1;
      if (width <= 0) {
        res.k = SolKind::None;  // empty loop: no iterations, no deps
        return res;
      }
      combos *= static_cast<size_t>(std::min<long long>(width, kEnumCap + 1));
      if (combos > kEnumCap) break;
    }

    bool fuzzy = false;
    if (allRanged && combos <= kEnumCap) {
      std::vector<long long> vals(uids.size(), 0);
      std::function<void(size_t, long long)> rec = [&](size_t i,
                                                       long long acc) {
        if (sols.size() > kSolCapPerLevel) return;
        if (i == uids.size()) {
          if (acc == d) {
            std::vector<std::optional<long long>> s(uids.size());
            for (size_t j = 0; j < uids.size(); ++j) s[j] = vals[j];
            sols.push_back(std::move(s));
          }
          return;
        }
        for (long long v = us[uids[i]].rlo; v <= us[uids[i]].rhi; ++v) {
          vals[i] = v;
          rec(i + 1, acc + us[uids[i]].c * v);
        }
      };
      rec(0, 0);
      if (sols.empty()) {
        res.k = SolKind::None;
        return res;
      }
      if (sols.size() > kSolCapPerLevel) fuzzy = true;
    } else if (uids.size() == 1) {
      long long c = us[uids[0]].c;
      if (c == 0) {
        fuzzy = true;  // should not happen (zero coeffs filtered)
      } else if (d % c != 0) {
        res.k = SolKind::None;
        return res;
      } else {
        sols.push_back({d / c});
      }
    } else {
      long long g = 0;
      for (size_t u : uids) g = std::gcd(g, std::llabs(us[u].c));
      if (g != 0 && d % g != 0) {
        res.k = SolKind::None;
        return res;
      }
      fuzzy = true;
    }

    if (fuzzy) {
      sols.clear();
      sols.push_back(std::vector<std::optional<long long>>(uids.size(),
                                                           std::nullopt));
    }
    // Map level-local solution positions back to global unknown indices.
    std::vector<std::vector<std::optional<long long>>> mapped;
    for (auto& s : sols) {
      std::vector<std::optional<long long>> full(us.size(), std::nullopt);
      for (size_t j = 0; j < uids.size(); ++j) full[uids[j]] = s[j];
      mapped.push_back(std::move(full));
    }
    levelSols.push_back(std::move(mapped));
  }

  // Combine levels (cross product, capped).
  std::vector<std::vector<std::optional<long long>>> combined;
  combined.push_back(
      std::vector<std::optional<long long>>(us.size(), std::nullopt));
  // Start from "unset" and overlay each level's assignments.
  for (auto& ls : levelSols) {
    std::vector<std::vector<std::optional<long long>>> next;
    for (auto& base : combined)
      for (auto& s : ls) {
        auto merged = base;
        for (size_t i = 0; i < us.size(); ++i)
          if (s[i].has_value()) merged[i] = s[i];
        next.push_back(std::move(merged));
        if (next.size() > kSolCapTotal) break;
      }
    if (next.size() > kSolCapTotal) {
      combined.clear();
      combined.push_back(
          std::vector<std::optional<long long>>(us.size(), std::nullopt));
      res.k = SolKind::Some;
      res.sols = std::move(combined);
      return res;
    }
    combined = std::move(next);
  }
  // Unknowns in no level (zero coefficient) stay nullopt — but zero-coeff
  // unknowns are filtered by the caller, so every unknown had a level.
  res.k = SolKind::Some;
  res.sols = std::move(combined);
  return res;
}

// ---------------------------------------------------------------------------
// Pairing: build the equation for two accesses and emit DepVectors.

constexpr size_t kVectorCap = 64;
constexpr size_t kAccessCap = 512;

struct PairSolver {
  const Walker& w;
  NestDeps& nd;
  bool capped = false;

  void pushUnknown(const Access& a, const Access& b,
                   const std::vector<const ir::Stmt*>& chain) {
    if (nd.vectors.size() >= kVectorCap) {
      capped = true;
      return;
    }
    DepVector v;
    v.src = {a.mat, a.write, a.range};
    v.dst = {b.mat, b.write, b.range};
    v.chain = chain;
    v.dist.assign(chain.size(), 0);
    v.known.assign(chain.size(), false);
    nd.vectors.push_back(std::move(v));
  }

  void solvePair(const Access& A, const Access& B) {
    // Common enclosing loops.
    size_t n = std::min(A.chain.size(), B.chain.size());
    std::vector<int> common;
    for (size_t i = 0; i < n && A.chain[i] == B.chain[i]; ++i)
      common.push_back(A.chain[i]);
    if (common.empty()) return;
    std::vector<const ir::Stmt*> chain;
    for (int id : common) chain.push_back(w.loopsById.at(id).stmt);

    if (!A.idx.ok || !B.idx.ok) {
      pushUnknown(A, B, chain);
      return;
    }

    std::vector<SysU> us;
    std::set<size_t> freeLevels;
    std::vector<std::pair<Poly, Poly>> coeffs(common.size());

    auto loopUB = [&](const LoopRec& r, SysU& u, bool distance) {
      if (distance) {
        if (r.haveConstTrip) {
          u.haveRange = true;
          u.rlo = -(r.constTrip - 1);
          u.rhi = r.constTrip - 1;
        }
        if (r.trip.ok) u.ub = sub(r.trip, Poly::cst(1));
      } else {
        // The variable itself: [lo, lo + trip).
        if (r.haveLoConst && r.haveConstTrip) {
          u.haveRange = true;
          u.rlo = r.loConst;
          u.rhi = r.loConst + r.constTrip - 1;
        }
        if (r.haveLoConst && r.loConst >= 0 && r.trip.ok)
          u.ub = add(Poly::cst(r.loConst - 1), r.trip);
      }
    };

    bool failed = false;
    auto singleMono = [&](const Poly& p, long long* c, Mono* m) {
      if (!p.ok || p.hasLoop()) return false;
      if (p.t.empty()) {
        *c = 0;
        m->clear();
        return true;
      }
      if (p.t.size() != 1) return false;
      *c = p.t.begin()->second;
      *m = p.t.begin()->first.m;
      return true;
    };

    for (size_t pos = 0; pos < common.size(); ++pos) {
      int id = common[pos];
      const LoopRec& r = w.loopsById.at(id);
      Poly ca = coeffOf(A.idx, id);
      Poly cb = coeffOf(B.idx, id);
      coeffs[pos] = {ca, cb};
      if (ca == cb) {
        long long c;
        Mono m;
        if (!singleMono(cb, &c, &m)) {
          failed = true;
          break;
        }
        if (c == 0) {
          freeLevels.insert(pos);
          continue;
        }
        SysU u;
        u.c = c;
        u.m = m;
        u.dLevel = static_cast<int>(pos);
        loopUB(r, u, true);
        us.push_back(std::move(u));
      } else {
        long long c;
        Mono m;
        if (!singleMono(cb, &c, &m)) {
          failed = true;
          break;
        }
        if (c != 0) {
          SysU u;
          u.c = c;
          u.m = m;
          u.dLevel = static_cast<int>(pos);
          loopUB(r, u, true);
          us.push_back(std::move(u));
        } else {
          freeLevels.insert(pos);
        }
        Poly diff = sub(cb, ca);
        if (!singleMono(diff, &c, &m)) {
          failed = true;
          break;
        }
        if (c != 0) {
          SysU u;
          u.c = c;
          u.m = m;
          loopUB(r, u, false);
          us.push_back(std::move(u));
        }
      }
    }
    // Non-common loops contribute auxiliary unknowns (their variables).
    auto auxFor = [&](const Access& acc, long long sign) {
      for (size_t i = common.size(); i < acc.chain.size() && !failed; ++i) {
        int id = acc.chain[i];
        const LoopRec& r = w.loopsById.at(id);
        Poly cp = coeffOf(acc.idx, id);
        long long c;
        Mono m;
        if (!singleMono(cp, &c, &m)) {
          failed = true;
          return;
        }
        if (c == 0) continue;
        SysU u;
        u.c = sign * c;
        u.m = m;
        loopUB(r, u, false);
        us.push_back(std::move(u));
      }
    };
    auxFor(A, -1);
    auxFor(B, 1);
    if (failed) {
      pushUnknown(A, B, chain);
      return;
    }

    // Split-group merging: d_out and d_in with C_out == factor * C_in
    // combine into one unknown bounded by the original extent.
    for (size_t pos = 0; pos < common.size(); ++pos) {
      const LoopRec& rin = w.loopsById.at(common[pos]);
      if (rin.groupOut < 0) continue;
      // Find the chain position of the group's outer loop.
      size_t outPos = common.size();
      for (size_t q = 0; q < common.size(); ++q)
        if (common[q] == rin.groupOut) outPos = q;
      if (outPos == common.size()) continue;
      int uin = -1, uout = -1;
      for (size_t k = 0; k < us.size(); ++k) {
        if (us[k].dLevel == static_cast<int>(pos)) uin = static_cast<int>(k);
        if (us[k].dLevel == static_cast<int>(outPos))
          uout = static_cast<int>(k);
      }
      if (uin < 0 || uout < 0) continue;
      // Only merge the plain distance unknowns of Ca==Cb levels.
      if (!(coeffs[pos].first == coeffs[pos].second) ||
          !(coeffs[outPos].first == coeffs[outPos].second))
        continue;
      if (us[uout].m != us[uin].m ||
          us[uout].c != us[uin].c * rin.groupFactor)
        continue;
      SysU merged;
      merged.c = us[uin].c;
      merged.m = us[uin].m;
      merged.dLevel = static_cast<int>(outPos);
      merged.dLevel2 = static_cast<int>(pos);
      if (rin.groupBound.ok) merged.ub = sub(rin.groupBound, Poly::cst(1));
      long long gb;
      if (rin.groupBound.ok && rin.groupBound.isConst(&gb)) {
        merged.haveRange = true;
        merged.rlo = -(gb - 1);
        merged.rhi = gb - 1;
      }
      std::vector<SysU> kept;
      for (size_t k = 0; k < us.size(); ++k)
        if (static_cast<int>(k) != uin && static_cast<int>(k) != uout)
          kept.push_back(std::move(us[k]));
      kept.push_back(std::move(merged));
      us = std::move(kept);
    }

    Poly delta = sub(loopFreePart(A.idx), loopFreePart(B.idx));
    SysResult r = solveSystem(us, delta);
    if (r.k == SolKind::None) return;
    if (r.k == SolKind::Unk) {
      pushUnknown(A, B, chain);
      return;
    }

    for (auto& sol : r.sols) {
      std::vector<int64_t> dist(common.size(), 0);
      std::vector<bool> known(common.size(), true);
      for (size_t pos : freeLevels) known[pos] = false;
      for (size_t k = 0; k < us.size(); ++k) {
        if (us[k].dLevel < 0) continue;
        if (!sol[k].has_value()) {
          known[us[k].dLevel] = false;
          if (us[k].dLevel2 >= 0) known[us[k].dLevel2] = false;
          continue;
        }
        long long v = *sol[k];
        if (us[k].dLevel2 >= 0) {
          if (v == 0) {
            dist[us[k].dLevel] = 0;
            dist[us[k].dLevel2] = 0;
          } else {
            known[us[k].dLevel] = false;
            known[us[k].dLevel2] = false;
          }
        } else {
          dist[us[k].dLevel] = v;
        }
      }
      bool allZero = true;
      for (size_t i = 0; i < dist.size(); ++i)
        if (!known[i] || dist[i] != 0) allZero = false;
      if (allZero) continue;  // loop-independent (assumption (3))

      // Lexicographic normalization when the leading component is known.
      bool swap = false;
      for (size_t i = 0; i < dist.size(); ++i) {
        if (!known[i]) break;  // ambiguous orientation, keep as-is
        if (dist[i] != 0) {
          swap = dist[i] < 0;
          break;
        }
      }
      if (swap)
        for (size_t i = 0; i < dist.size(); ++i)
          if (known[i]) dist[i] = -dist[i];

      if (nd.vectors.size() >= kVectorCap) {
        capped = true;
        break;
      }
      DepVector v;
      v.src = swap ? DepAccess{B.mat, B.write, B.range}
                   : DepAccess{A.mat, A.write, A.range};
      v.dst = swap ? DepAccess{A.mat, A.write, A.range}
                   : DepAccess{B.mat, B.write, B.range};
      v.chain = chain;
      v.dist = std::move(dist);
      v.known = std::move(known);
      // Deduplicate within the result set.
      bool dup = false;
      for (auto& e : nd.vectors)
        if (e.chain == v.chain && e.dist == v.dist && e.known == v.known &&
            e.src.range.begin == v.src.range.begin &&
            e.dst.range.begin == v.dst.range.begin &&
            e.src.mat == v.src.mat)
          dup = true;
      if (!dup) nd.vectors.push_back(std::move(v));
    }
  }

  void run() {
    if (accessesTooMany()) return;
    for (size_t i = 0; i < w.accesses.size(); ++i)
      for (size_t j = i; j < w.accesses.size(); ++j) {
        const Access& A = w.accesses[i];
        const Access& B = w.accesses[j];
        if (!A.write && !B.write) continue;
        bool inter = false;
        for (int r : A.roots)
          if (B.roots.count(r)) inter = true;
        if (!inter) continue;
        solvePair(A, B);
        if (capped) {
          // Conservative blanket once the cap is hit.
          std::vector<const ir::Stmt*> chain = {nd.top};
          pushAtCap(A, B, chain);
          return;
        }
      }
  }

  bool accessesTooMany() {
    if (w.accesses.size() <= kAccessCap) return false;
    std::vector<const ir::Stmt*> chain = {nd.top};
    DepVector v;
    v.chain = chain;
    v.dist = {0};
    v.known = {false};
    if (!w.accesses.empty()) {
      const Access& a = w.accesses.front();
      v.src = v.dst = {a.mat, a.write, a.range};
    }
    nd.vectors.push_back(std::move(v));
    return true;
  }

  void pushAtCap(const Access& a, const Access& b,
                 const std::vector<const ir::Stmt*>& chain) {
    DepVector v;
    v.src = {a.mat, a.write, a.range};
    v.dst = {b.mat, b.write, b.range};
    v.chain = chain;
    v.dist = {0};
    v.known = {false};
    nd.vectors.push_back(std::move(v));
  }
};

void collectNestRoots(const ir::Stmt& st, std::vector<const ir::Stmt*>& out) {
  if (st.k == ir::Stmt::K::For) {
    out.push_back(&st);
    return;
  }
  for (auto& k : st.kids)
    if (k) collectNestRoots(*k, out);
}

}  // namespace

// ---------------------------------------------------------------------------
// Summaries.

const PSummary* Depend::Impl::summaryFor(const ir::Function& f) {
  auto it = summaries.find(&f);
  if (it != summaries.end()) return it->second.get();
  if (!f.body || inProgress.count(&f)) return nullptr;
  inProgress.insert(&f);

  auto sum = std::make_unique<PSummary>();
  size_t np = f.numParams;
  sum->wholeRead.assign(np, 0);
  sum->wholeWrite.assign(np, 0);
  sum->retMayAlias.assign(np, 0);

  Walker w(*this, f, /*summaryMode=*/true);
  w.out = sum.get();
  w.walk(*f.body);
  if (w.hasIO) sum->hasIO = true;

  inProgress.erase(&f);
  auto* raw = sum.get();
  summaries.emplace(&f, std::move(sum));
  return raw;
}

// ---------------------------------------------------------------------------
// Public API.

Depend::Depend(const ir::Module& m) : impl_(std::make_unique<Impl>(m)) {
  for (auto& f : m.functions)
    if (f && f->body) impl_->summaryFor(*f);
}

Depend::~Depend() = default;

NestDeps Depend::analyzeNest(const ir::Function& f, const ir::Stmt& top,
                             const std::vector<const ir::Stmt*>* context)
    const {
  Impl& D = const_cast<Impl&>(*impl_);  // interner is an internal cache
  NestDeps nd;
  nd.fn = &f;
  nd.top = &top;
  if (top.k != ir::Stmt::K::For) return nd;

  Walker w(D, f, /*summaryMode=*/false);
  w.nest = &top;
  forEachStmt(top, [&](const ir::Stmt& s) {
    for (int32_t x : writtenSlots(s)) w.writtenInNest.insert(x);
  });

  std::vector<const ir::Stmt*> ctx;
  if (context)
    ctx = *context;
  else if (f.body)
    ctx.push_back(f.body.get());
  for (const ir::Stmt* st : ctx)
    if (st) w.findAncestors(*st);
  for (const ir::Stmt* st : ctx)
    if (st) w.countWrites(*st, /*dom=*/true);
  if (!w.seenNest) {
    // Hook-time context: the nest is not emitted yet; count its writes so
    // multiply-assigned slots are not mistaken for single-assignment.
    w.countWrites(top, /*dom=*/false);
  }

  w.walk(top);

  nd.loops = w.loopOrder;
  nd.hasIO = w.hasIO;
  nd.hasEscape = w.hasEscape;
  nd.accesses = w.accesses.size();
  PairSolver ps{w, nd};
  ps.run();
  return nd;
}

std::vector<NestDeps> Depend::analyzeModule(DependStats* stats) const {
  std::vector<NestDeps> out;
  for (auto& f : impl_->mod.functions) {
    if (!f || !f->body) continue;
    std::vector<const ir::Stmt*> nests;
    collectNestRoots(*f->body, nests);
    for (const ir::Stmt* n : nests) out.push_back(analyzeNest(*f, *n));
  }
  if (stats) {
    for (auto& nd : out) {
      ++stats->nests;
      stats->vectors += nd.vectors.size();
      for (auto& v : nd.vectors)
        if (!v.fullyKnown()) ++stats->unknown;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Vector / nest queries.

const char* depKindName(DepKind k) {
  switch (k) {
    case DepKind::None:
      return "none";
    case DepKind::Forward:
      return "forward";
    case DepKind::Backward:
      return "backward";
    case DepKind::Unknown:
      return "unknown";
  }
  return "?";
}

bool DepVector::fullyKnown() const {
  for (bool b : known)
    if (!b) return false;
  return true;
}

bool DepVector::possiblyCarriedAt(size_t level) const {
  if (level >= chain.size()) return false;
  for (size_t i = 0; i < level; ++i)
    if (known[i] && dist[i] != 0) return false;  // carried strictly outside
  return !known[level] || dist[level] != 0;
}

bool DepVector::possiblyCarriedBy(const ir::Stmt* loop) const {
  for (size_t i = 0; i < chain.size(); ++i)
    if (chain[i] == loop) return possiblyCarriedAt(i);
  return false;
}

std::string DepVector::render() const {
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < dist.size(); ++i) {
    if (i) os << ',';
    if (known[i])
      os << dist[i];
    else
      os << '*';
  }
  os << ')';
  return os.str();
}

DepKind NestDeps::classify() const {
  if (vectors.empty()) return DepKind::None;
  bool backward = false;
  for (auto& v : vectors) {
    if (!v.fullyKnown()) return DepKind::Unknown;
    for (size_t i = 0; i < v.dist.size(); ++i)
      if (v.dist[i] < 0) backward = true;
  }
  return backward ? DepKind::Backward : DepKind::Forward;
}

DepKind NestDeps::classifyLoop(const ir::Stmt* loop) const {
  bool any = false, unknown = false, backward = false;
  for (auto& v : vectors) {
    size_t pos = v.chain.size();
    for (size_t i = 0; i < v.chain.size(); ++i)
      if (v.chain[i] == loop) pos = i;
    if (pos == v.chain.size()) continue;
    if (!v.possiblyCarriedAt(pos)) continue;
    any = true;
    if (!v.fullyKnown()) unknown = true;
    for (size_t i = pos; i < v.dist.size(); ++i)
      if (v.known[i] && v.dist[i] < 0) backward = true;
  }
  if (!any) return DepKind::None;
  if (unknown) return DepKind::Unknown;
  return backward ? DepKind::Backward : DepKind::Forward;
}

const DepVector* NestDeps::witnessFor(const ir::Stmt* loop) const {
  const DepVector* unknown = nullptr;
  for (auto& v : vectors) {
    if (!v.possiblyCarriedBy(loop)) continue;
    if (v.fullyKnown()) return &v;
    if (!unknown) unknown = &v;
  }
  return unknown;
}

std::string renderDependReport(const std::vector<NestDeps>& nests) {
  std::ostringstream os;
  os << "depend:\n";
  if (nests.empty()) {
    os << "  (no loop nests)\n";
    return os.str();
  }
  for (const NestDeps& nd : nests) {
    os << "  " << (nd.fn ? nd.fn->name : "?") << ": nest '"
       << (nd.top ? nd.top->loopName : "?") << "' [";
    for (size_t i = 0; i < nd.loops.size(); ++i) {
      if (i) os << ", ";
      os << nd.loops[i]->loopName;
    }
    os << "]: " << depKindName(nd.classify());
    if (nd.hasIO) os << ", io";
    if (nd.hasEscape) os << ", escape";
    os << " (" << nd.vectors.size() << " vectors, " << nd.accesses
       << " accesses)\n";
    size_t shown = 0;
    for (const DepVector& v : nd.vectors) {
      if (shown++ >= 8) {
        os << "    ... (" << nd.vectors.size() - 8 << " more)\n";
        break;
      }
      os << "    " << v.src.mat << " " << v.render() << ": "
         << (v.src.write ? "store" : "load") << " -> "
         << (v.dst.write ? "store" : "load") << "\n";
    }
  }
  return os.str();
}

}  // namespace mmx::analysis
