#include "analysis/lint.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"

namespace mmx::analysis {

namespace {

/// Lint-worthy slots: named user variables, not "%..." compiler temps.
bool userVisible(const ir::Function& f, int32_t slot) {
  if (slot < 0 || static_cast<size_t>(slot) >= f.locals.size()) return false;
  const std::string& n = f.locals[slot].name;
  return !n.empty() && n[0] != '%';
}

bool exprHasEffects(const ir::Expr& e) {
  bool effects = false;
  forEachExpr(e, [&](const ir::Expr& x) {
    if (x.k == ir::Expr::K::Call) effects = true;
  });
  return effects;
}

// ---------------------------------------------------------------------------
// Definite initialization (forward; intersection join, so the engine's
// loop fixpoint shrinks states monotonically — the final, smallest state
// is always pushed through the body once, making flag accumulation exact).

struct InitTransfer {
  using State = SlotSet;

  const ir::Function& f;
  DiagnosticEngine& diags;
  std::set<int32_t> reported;

  State copy(const State& s) { return s; }
  bool join(State& a, const State& b) { return a.intersectWith(b); }

  void transfer(const ir::Stmt& s, State& st) {
    for (int32_t r : readSlots(s)) {
      if (st.get(r) || !userVisible(f, r)) continue;
      if (reported.insert(r).second)
        diags.warning(s.range, "'" + f.locals[r].name +
                                   "' may be used before it is assigned");
      st.set(r); // one report per variable
    }
    for (int32_t w : writtenSlots(s)) st.set(w);
  }
};

// ---------------------------------------------------------------------------
// Dead stores (backward liveness; union join grows states monotonically,
// so "was this store ever live on any visit" converges to the fixpoint
// answer and survivors are exactly the dead stores).

struct LiveTransfer {
  using State = SlotSet;

  const ir::Function& f;
  std::map<const ir::Stmt*, bool> everLive; // Assign stmt -> observed live

  State copy(const State& s) { return s; }
  bool join(State& a, const State& b) { return a.unionWith(b); }

  void transfer(const ir::Stmt& s, State& st) {
    if (s.k == ir::Stmt::K::Assign && userVisible(f, s.slot)) {
      bool& live = everLive[&s];
      live = live || st.get(s.slot);
    }
    for (int32_t w : writtenSlots(s)) st.set(w, false);
    for (int32_t r : readSlots(s)) st.set(r);
  }
};

} // namespace

// ---------------------------------------------------------------------------
// Allocated-but-dead matrices (ISSUE 6): a user-visible Mat local defined
// in the function (not a parameter — stores into a borrowed parameter are
// caller-observable) whose handle no expression anywhere reads. Element
// stores into the matrix do not count as reads; passing it to any call,
// returning it, loading from it, or taking a dimension all do.

void lintDeadMatrices(const ir::Function& f, DiagnosticEngine& diags) {
  std::vector<char> read(f.locals.size(), 0);
  std::map<int32_t, const ir::Stmt*> firstDef; // Mat slot -> defining stmt
  forEachStmt(*f.body, [&](const ir::Stmt& s) {
    for (const auto& e : s.exprs)
      if (e)
        forEachExpr(*e, [&](const ir::Expr& x) {
          if (x.k == ir::Expr::K::Var && x.slot >= 0 &&
              static_cast<size_t>(x.slot) < read.size())
            read[x.slot] = 1;
        });
    if (s.k == ir::Stmt::K::Assign && f.locals[s.slot].ty == ir::Ty::Mat)
      firstDef.emplace(s.slot, &s);
    if (s.k == ir::Stmt::K::CallAssign)
      for (int32_t d : s.dsts)
        if (d >= 0 && static_cast<size_t>(d) < f.locals.size() &&
            f.locals[d].ty == ir::Ty::Mat)
          firstDef.emplace(d, &s);
  });
  for (const auto& [slot, def] : firstDef) {
    if (read[slot] || !userVisible(f, slot)) continue;
    if (static_cast<size_t>(slot) < f.numParams) continue;
    if (!def->range.valid()) continue;
    diags.warning(def->range, "matrix '" + f.locals[slot].name +
                                  "' is allocated but never read "
                                  "[-Wdead-matrix]");
  }
}

void lintFunction(const ir::Function& f, DiagnosticEngine& diags,
                  const LintOptions& opts) {
  if (!f.body) return;

  InitTransfer init{f, diags, {}};
  ForwardEngine<InitTransfer> fwd(init);
  SlotSet entry(f.locals.size());
  for (size_t i = 0; i < f.numParams && i < f.locals.size(); ++i)
    entry.set(static_cast<int32_t>(i));
  fwd.run(*f.body, std::move(entry));

  LiveTransfer live{f, {}};
  BackwardEngine<LiveTransfer> bwd(live);
  bwd.run(*f.body, SlotSet(f.locals.size()), SlotSet(f.locals.size()));
  // Report in program order (the analysis map is keyed by pointer).
  forEachStmt(*f.body, [&](const ir::Stmt& s) {
    auto it = live.everLive.find(&s);
    if (it == live.everLive.end() || it->second) return;
    // Matrix-handle rebinds and side-effecting right-hand sides are kept;
    // scalar stores nothing observes are reported.
    if (f.locals[s.slot].ty == ir::Ty::Mat) return;
    // Synthesized lowering glue (e.g. the `q = qout*8 + qin` index
    // reconstruction a `split` inserts) carries no source range; the user
    // never wrote the store, so there is nothing actionable to report.
    if (!s.range.valid()) return;
    if (s.exprs.empty() || exprHasEffects(*s.exprs[0])) return;
    diags.warning(s.range, "value assigned to '" + f.locals[s.slot].name +
                               "' is never used");
  });

  if (opts.deadMatrix) lintDeadMatrices(f, diags);
}

void lintModule(const ir::Module& m, DiagnosticEngine& diags,
                const LintOptions& opts) {
  for (const auto& f : m.functions)
    if (f) lintFunction(*f, diags, opts);
}

} // namespace mmx::analysis
