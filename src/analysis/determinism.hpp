// Modular determinism analysis (paper §VI-A, after Schwerdfeger & Van Wyk
// [PLDI'09]): a per-extension check `isComposable(host, ext)` such that
//
//   forall i: isLALR(host ∪ ext_i) ∧ isComposable(host, ext_i)
//       ==>  isLALR(host ∪ ext_1 ∪ ... ∪ ext_n)
//
// The conditions implemented here are the paper's operative ones:
//  (1) host ∪ ext alone is conflict-free LALR(1);
//  (2) every "bridge" production (extension production whose LHS is a host
//      nonterminal) starts with a *marking terminal* — a terminal that the
//      extension itself declares, so no host token can also start the
//      extension's syntax;
//  (3) marking terminals appear nowhere else (only as the first symbol of
//      bridge productions), so the parser commits to the extension only at
//      its unique entry token.
//
// The paper notes the tuples extension fails this check because its
// constructs begin with the host's '(' — tests/analysis reproduces that.
#pragma once

#include <string>
#include <vector>

#include "ext/fragment.hpp"

namespace mmx::analysis {

/// Outcome of the determinism analysis for one extension.
struct DeterminismResult {
  bool composable = false;
  std::vector<std::string> problems; // empty iff composable
};

/// Runs isComposable(host, ext). Extension authors run this before
/// publishing; users compose only extensions that pass and get the LALR
/// guarantee for any selection of them.
DeterminismResult isComposable(const ext::GrammarFragment& host,
                               const ext::GrammarFragment& extension);

/// Empirical check backing the theorem: composes host + all extensions and
/// reports any LALR conflicts (used by tests and by the translator driver
/// as a belt-and-braces verification).
std::vector<std::string> composedConflicts(
    const ext::GrammarFragment& host,
    const std::vector<const ext::GrammarFragment*>& extensions);

} // namespace mmx::analysis
