// Constant/shape propagation over one ir::Function — a forward dataflow
// pass on the dataflow.hpp engine. Two kinds of facts are tracked per
// int-typed slot:
//
//   * compile-time integer constants (`n = 7`, `n = 3 * 4`), and
//   * shape symbols: `n = dimSize(m, d)` records the symbolic identity
//     (m, d) so two slots loaded from the same dimension compare equal.
//
// parsafe uses the environment captured at each For header to resolve
// affine index coefficients (a stride that folds to the constant 0 is a
// same-cell race, a nonzero constant distributes iterations); the shape
// symbols let it match strides against loop extents structurally.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ir/ir.hpp"

namespace mmx::analysis {

/// Abstract value of one slot: unknown (top), a known int constant, or a
/// symbolic shape `dimSize(matSlot, dim)`.
struct ConstVal {
  enum class K : uint8_t { Unknown, Int, Shape };
  K k = K::Unknown;
  int64_t i = 0;        // Int
  int32_t matSlot = -1; // Shape
  int32_t dim = 0;      // Shape

  static ConstVal unknown() { return {}; }
  static ConstVal intVal(int64_t v) { return {K::Int, v, -1, 0}; }
  static ConstVal shape(int32_t m, int32_t d) { return {K::Shape, 0, m, d}; }

  bool isInt() const { return k == K::Int; }
  friend bool operator==(const ConstVal& a, const ConstVal& b) {
    if (a.k != b.k) return false;
    if (a.k == K::Int) return a.i == b.i;
    if (a.k == K::Shape) return a.matSlot == b.matSlot && a.dim == b.dim;
    return true;
  }
};

/// Slot -> abstract value at one program point.
using ConstEnv = std::vector<ConstVal>;

/// Evaluates `e` under `env`. Folds integer arithmetic, propagates Var
/// bindings, and tags dimSize() reads as shape symbols.
ConstVal evalConst(const ir::Expr& e, const ConstEnv& env);

/// Runs the pass over `f` and captures the environment holding at the
/// entry of every For statement (i.e. before the first iteration).
class ConstShapeProp {
public:
  explicit ConstShapeProp(const ir::Function& f);

  /// Environment at the For's header; nullptr for statements that are not
  /// For loops of `f` (or unreachable ones).
  const ConstEnv* atLoop(const ir::Stmt* forStmt) const {
    auto it = atLoop_.find(forStmt);
    return it == atLoop_.end() ? nullptr : &it->second;
  }

private:
  std::map<const ir::Stmt*, ConstEnv> atLoop_;
};

} // namespace mmx::analysis
