// Interprocedural affine dependence analysis over loop nests.
//
// For every pair of matrix accesses inside a For nest the pass computes
// the set of distance vectors (one component per common enclosing loop,
// outermost first) for which the two accesses can touch the same element
// in different iterations. Index expressions are modeled as polynomials
// over interned loop-invariant atoms (opaque locals, dimSize(m, k) of a
// matrix, parameters inside call summaries) with loop-variable terms —
// the same affine-form idea as shapecheck's lattice, extended with a
// monomial-dominance solver so the row-major offsets the lowering emits
// (`(i*s + j)` with a symbolic stride `s`) resolve exactly.
//
// Consumers:
//   - the transform extension's legality verifier (reorder / parallelize
//     / vectorize / tile / interchange clauses are checked against the
//     vectors before the rewrite is applied),
//   - the -O1 `autopar` pass (serial loops whose carried-dependence set
//     is provably empty are promoted to parallel),
//   - `mmc --analyze`'s `depend:` report section and the
//     `depend.{nests,vectors,unknown}` counters.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "support/source.hpp"

namespace mmx::analysis {

/// Carried-dependence classification of a nest or a single loop level.
enum class DepKind : uint8_t { None, Forward, Backward, Unknown };

const char* depKindName(DepKind k);

/// One side of a dependence: a matrix access inside the nest.
struct DepAccess {
  std::string mat;       // source-level matrix variable name
  bool write = false;
  SourceRange range;     // source range of the statement performing it
};

/// A may-dependence between two accesses as a distance vector over the
/// loops enclosing both. `src` executes (lexicographically) no later
/// than `dst` when the leading component is known; with unknown leading
/// components the orientation is ambiguous and sign-sensitive consumers
/// must treat the vector conservatively.
struct DepVector {
  DepAccess src, dst;
  std::vector<const ir::Stmt*> chain;  // common enclosing For loops
  std::vector<int64_t> dist;           // distance per chain level
  std::vector<bool> known;             // !known[i] => dist[i] is unknown

  bool fullyKnown() const;
  /// Could this dependence be carried by chain[level] (all outer
  /// components possibly zero, this component possibly nonzero)?
  bool possiblyCarriedAt(size_t level) const;
  bool possiblyCarriedBy(const ir::Stmt* loop) const;
  /// "(1,0,*)" — '*' for unknown components.
  std::string render() const;
};

/// Dependence summary of one loop nest.
struct NestDeps {
  const ir::Function* fn = nullptr;
  const ir::Stmt* top = nullptr;            // outermost For
  std::vector<const ir::Stmt*> loops;       // all For loops, preorder
  std::vector<DepVector> vectors;           // carried / unknown only
  bool hasIO = false;      // IO or calls with unknown effects inside
  bool hasEscape = false;  // break / return leaves the nest
  size_t accesses = 0;     // matrix accesses seen

  DepKind classify() const;
  /// Verdict restricted to dependences possibly carried by `loop`.
  DepKind classifyLoop(const ir::Stmt* loop) const;
  /// A vector possibly carried by `loop` (unknown preferred last), or
  /// nullptr when none exists.
  const DepVector* witnessFor(const ir::Stmt* loop) const;
};

struct DependStats {
  uint64_t nests = 0;
  uint64_t vectors = 0;
  uint64_t unknown = 0;  // vectors with at least one unknown component
};

/// The analysis context. Builds per-function parameter-access summaries
/// bottom-up once; nest queries are then independent.
class Depend {
public:
  explicit Depend(const ir::Module& m);
  ~Depend();

  /// Analyzes the nest rooted at `top` (must be a For) inside `f`.
  /// `context` lists the statements lexically surrounding the nest in
  /// execution order (used to resolve loop-invariant temps such as the
  /// shape/bound slots the with-loop lowering emits); pass the
  /// statements emitted so far when the function body is still being
  /// built (transformation hooks), or nullptr to use f.body.
  NestDeps analyzeNest(const ir::Function& f, const ir::Stmt& top,
                       const std::vector<const ir::Stmt*>* context =
                           nullptr) const;

  /// Every outermost For nest of every function, in program order.
  std::vector<NestDeps> analyzeModule(DependStats* stats = nullptr) const;

  struct Impl;  // public so the file-local walker can reference it

private:
  std::unique_ptr<Impl> impl_;
};

/// The `depend:` section of `mmc --analyze`.
std::string renderDependReport(const std::vector<NestDeps>& nests);

}  // namespace mmx::analysis
