#include "analysis/constprop.hpp"

#include "analysis/dataflow.hpp"

namespace mmx::analysis {

ConstVal evalConst(const ir::Expr& e, const ConstEnv& env) {
  switch (e.k) {
    case ir::Expr::K::ConstI: return ConstVal::intVal(e.i);
    case ir::Expr::K::ConstB: return ConstVal::intVal(e.i);
    case ir::Expr::K::Var:
      if (e.slot >= 0 && static_cast<size_t>(e.slot) < env.size())
        return env[e.slot];
      return ConstVal::unknown();
    case ir::Expr::K::DimSize: {
      // dimSize(m, d) with a variable matrix and constant dimension is a
      // shape symbol; anything else is unknown.
      const ir::Expr& m = *e.args[0];
      ConstVal d = evalConst(*e.args[1], env);
      if (m.k == ir::Expr::K::Var && d.isInt())
        return ConstVal::shape(m.slot, static_cast<int32_t>(d.i));
      return ConstVal::unknown();
    }
    case ir::Expr::K::Neg: {
      ConstVal a = evalConst(*e.args[0], env);
      return a.isInt() ? ConstVal::intVal(-a.i) : ConstVal::unknown();
    }
    case ir::Expr::K::Cast: {
      if (e.ty != ir::Ty::I32) return ConstVal::unknown();
      ConstVal a = evalConst(*e.args[0], env);
      return a.isInt() ? a : ConstVal::unknown();
    }
    case ir::Expr::K::Arith: {
      ConstVal a = evalConst(*e.args[0], env);
      ConstVal b = evalConst(*e.args[1], env);
      if (!a.isInt() || !b.isInt()) return ConstVal::unknown();
      switch (e.aop) {
        case ir::ArithOp::Add: return ConstVal::intVal(a.i + b.i);
        case ir::ArithOp::Sub: return ConstVal::intVal(a.i - b.i);
        case ir::ArithOp::Mul:
        case ir::ArithOp::EwMul: return ConstVal::intVal(a.i * b.i);
        case ir::ArithOp::Div:
          return b.i ? ConstVal::intVal(a.i / b.i) : ConstVal::unknown();
        case ir::ArithOp::Mod:
          return b.i ? ConstVal::intVal(a.i % b.i) : ConstVal::unknown();
        case ir::ArithOp::Min: return ConstVal::intVal(std::min(a.i, b.i));
        case ir::ArithOp::Max: return ConstVal::intVal(std::max(a.i, b.i));
      }
      return ConstVal::unknown();
    }
    default: return ConstVal::unknown();
  }
}

namespace {

/// Transfer policy for the forward engine: kill written slots, bind
/// Assign results, and record the env at every For header.
struct ConstTransfer {
  using State = ConstEnv;

  std::map<const ir::Stmt*, ConstEnv>& atLoop;

  State copy(const State& s) { return s; }

  bool join(State& into, const State& from) {
    bool changed = false;
    for (size_t i = 0; i < into.size(); ++i) {
      if (into[i].k == ConstVal::K::Unknown) continue;
      if (i >= from.size() || !(into[i] == from[i])) {
        into[i] = ConstVal::unknown();
        changed = true;
      }
    }
    return changed;
  }

  void transfer(const ir::Stmt& s, State& st) {
    switch (s.k) {
      case ir::Stmt::K::Assign:
        st[s.slot] = evalConst(*s.exprs[0], st);
        break;
      case ir::Stmt::K::For: {
        // Record the entry env (first visit wins the pre-fixpoint copy;
        // later visits overwrite with the joined — i.e. sound — env).
        atLoop[&s] = st;
        st[s.slot] = ConstVal::unknown(); // the loop var varies
        break;
      }
      default:
        for (int32_t w : writtenSlots(s))
          if (w >= 0 && static_cast<size_t>(w) < st.size())
            st[w] = ConstVal::unknown();
        break;
    }
  }
};

} // namespace

ConstShapeProp::ConstShapeProp(const ir::Function& f) {
  if (!f.body) return;
  ConstTransfer t{atLoop_};
  ForwardEngine<ConstTransfer> engine(t);
  engine.run(*f.body, ConstEnv(f.locals.size()));
}

} // namespace mmx::analysis
