#include "analysis/dataflow.hpp"

#include <algorithm>

namespace mmx::analysis {

namespace {

void walkDims(const std::vector<ir::IndexDim>& dims,
              const std::function<void(const ir::Expr&)>& f);

void walkExpr(const ir::Expr& e, const std::function<void(const ir::Expr&)>& f) {
  f(e);
  for (const auto& a : e.args)
    if (a) walkExpr(*a, f);
  walkDims(e.dims, f);
}

void walkDims(const std::vector<ir::IndexDim>& dims,
              const std::function<void(const ir::Expr&)>& f) {
  for (const auto& d : dims) {
    if (d.a) walkExpr(*d.a, f);
    if (d.b) walkExpr(*d.b, f);
  }
}

} // namespace

void forEachExpr(const ir::Expr& e,
                 const std::function<void(const ir::Expr&)>& f) {
  walkExpr(e, f);
}

void forEachStmtExpr(const ir::Stmt& s,
                     const std::function<void(const ir::Expr&)>& f) {
  for (const auto& e : s.exprs)
    if (e) walkExpr(*e, f);
  walkDims(s.dims, f);
}

void forEachStmt(const ir::Stmt& root,
                 const std::function<void(const ir::Stmt&)>& f) {
  f(root);
  for (const auto& k : root.kids)
    if (k) forEachStmt(*k, f);
}

void forEachStmt(ir::Stmt& root, const std::function<void(ir::Stmt&)>& f) {
  f(root);
  for (auto& k : root.kids)
    if (k) forEachStmt(*k, f);
}

std::vector<int32_t> readSlots(const ir::Stmt& s) {
  std::vector<int32_t> out;
  forEachStmtExpr(s, [&](const ir::Expr& e) {
    if (e.k == ir::Expr::K::Var) out.push_back(e.slot);
  });
  // Buffer stores read the target handle through the frame slot.
  if (s.k == ir::Stmt::K::StoreFlat || s.k == ir::Stmt::K::IndexStore)
    out.push_back(s.slot);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int32_t> writtenSlots(const ir::Stmt& s) {
  switch (s.k) {
    case ir::Stmt::K::Assign:
    case ir::Stmt::K::For: return {s.slot};
    case ir::Stmt::K::CallAssign: return s.dsts;
    default: return {};
  }
}

bool exprReadsSlot(const ir::Expr& e, int32_t slot) {
  bool found = false;
  walkExpr(e, [&](const ir::Expr& x) {
    if (x.k == ir::Expr::K::Var && x.slot == slot) found = true;
  });
  return found;
}

bool exprEquals(const ir::Expr& a, const ir::Expr& b) {
  if (a.k != b.k || a.ty != b.ty) return false;
  switch (a.k) {
    case ir::Expr::K::ConstI:
    case ir::Expr::K::ConstB:
      if (a.i != b.i) return false;
      break;
    case ir::Expr::K::ConstF:
      if (a.f != b.f) return false;
      break;
    case ir::Expr::K::ConstS:
      if (a.s != b.s) return false;
      break;
    case ir::Expr::K::Var:
      if (a.slot != b.slot) return false;
      break;
    case ir::Expr::K::Arith:
      if (a.aop != b.aop) return false;
      break;
    case ir::Expr::K::Cmp:
      if (a.cop != b.cop) return false;
      break;
    case ir::Expr::K::Logic:
      if (a.lop != b.lop) return false;
      break;
    case ir::Expr::K::Call:
      if (a.s != b.s) return false;
      break;
    default: break;
  }
  if (a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!a.args[i] != !b.args[i]) return false;
    if (a.args[i] && !exprEquals(*a.args[i], *b.args[i])) return false;
  }
  return dimsEqual(a.dims, b.dims);
}

bool dimsEqual(const std::vector<ir::IndexDim>& a,
               const std::vector<ir::IndexDim>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind) return false;
    if (!a[i].a != !b[i].a || !a[i].b != !b[i].b) return false;
    if (a[i].a && !exprEquals(*a[i].a, *b[i].a)) return false;
    if (a[i].b && !exprEquals(*a[i].b, *b[i].b)) return false;
  }
  return true;
}

} // namespace mmx::analysis
