// Matrix/scalar liveness ranges over one function (ISSUE 6): a backward
// may-analysis on the dataflow engine recording, for every statement, the
// set of slots that may still be read after it on some path. The optimizer
// (ir/optimize) consults these ranges to delete whole-matrix temporaries
// whose values are never observed and to prove that a handle copy
// `A = %wres` is the last use of the temporary, so A can absorb the
// temporary's buffer (uniqueness.hpp builds on the same facts).
//
// Precision note: for leaf statements (Assign, StoreFlat, CallStmt, ...)
// `liveAfter` is the exact fixpoint may-live set. For compound statements
// (For/While/If) the engine presents the policy with header states from
// every fixpoint iteration, so the recorded set over-approximates "live
// after the whole construct" — conservative for every client here (a
// larger live set only suppresses rewrites).
#pragma once

#include <map>

#include "analysis/dataflow.hpp"
#include "ir/ir.hpp"

namespace mmx::analysis {

struct Liveness {
  /// Union over every abstract visit of the slots live *after* each
  /// statement (may-liveness; see the precision note above).
  std::map<const ir::Stmt*, SlotSet> liveAfter;

  /// True when `slot` may still be read after `s`. Unknown statements
  /// (never visited: dead code) report live — the conservative answer.
  bool isLiveAfter(const ir::Stmt* s, int32_t slot) const {
    auto it = liveAfter.find(s);
    if (it == liveAfter.end()) return true;
    return it->second.get(slot);
  }
};

/// Runs the backward pass over `f`. Nothing is assumed live at function
/// exit (locals die at return; returned values are read by Ret itself).
Liveness computeLiveness(const ir::Function& f);

} // namespace mmx::analysis
