#include "analysis/determinism.hpp"

#include <set>

#include "parse/lalr.hpp"

namespace mmx::analysis {

using ext::GrammarFragment;
using ext::ProdSpec;

DeterminismResult isComposable(const GrammarFragment& host,
                               const GrammarFragment& extension) {
  DeterminismResult r;

  std::set<std::string> hostTerms, hostNTs, extTerms, extNTs;
  for (const auto& t : host.terminals) hostTerms.insert(t.name);
  for (const auto& n : host.nonterminals) hostNTs.insert(n);
  for (const auto& t : extension.terminals) extTerms.insert(t.name);
  for (const auto& n : extension.nonterminals) extNTs.insert(n);

  // Condition (1): host ∪ ext is LALR(1).
  {
    grammar::Grammar g;
    DiagnosticEngine diags;
    if (!ext::composeGrammar({&host, &extension}, g, diags)) {
      for (const auto& d : diags.all())
        r.problems.push_back("composition error: " + d.message);
      return r;
    }
    parse::LalrTables t = parse::LalrTables::build(g);
    for (const auto& c : t.conflicts())
      r.problems.push_back("host+" + extension.name + " is not LALR(1): " +
                           c.description);
  }

  // Conditions (2)+(3): marking terminals on bridge productions. Two
  // shapes qualify:
  //   A -> t beta        (prefix form: t is an extension terminal)
  //   A -> A t beta      (operator form: left-recursive with the new
  //                       operator terminal immediately after, e.g.
  //                       MulE -> MulE '.*' Unary — the parser commits to
  //                       the extension only at t, which no other
  //                       extension can also introduce)
  std::set<std::string> markers;
  for (const ProdSpec& p : extension.productions) {
    bool bridge = hostNTs.count(p.lhs) > 0;
    if (!bridge) continue;
    if (p.rhs.empty()) {
      r.problems.push_back("bridge production '" + p.name +
                           "' is empty; it needs a marking terminal");
      continue;
    }
    if (extTerms.count(p.rhs.front())) {
      markers.insert(p.rhs.front());
      continue;
    }
    if (p.rhs.size() >= 2 && p.rhs.front() == p.lhs &&
        extTerms.count(p.rhs[1])) {
      markers.insert(p.rhs[1]);
      continue;
    }
    r.problems.push_back(
        "bridge production '" + p.name + "' starts with '" + p.rhs.front() +
        "', which is not a terminal introduced by extension '" +
        extension.name + "' — extension syntax must begin with a unique "
        "marking terminal (or be the left-recursive operator form)");
  }

  // Marking terminals must not occur anywhere except at the start of
  // bridge productions.
  for (const ProdSpec& p : extension.productions) {
    bool bridge = hostNTs.count(p.lhs) > 0;
    bool opForm = bridge && p.rhs.size() >= 2 && p.rhs.front() == p.lhs;
    for (size_t i = 0; i < p.rhs.size(); ++i) {
      if (bridge && (i == 0 || (opForm && i == 1))) continue;
      if (markers.count(p.rhs[i]))
        r.problems.push_back("marking terminal '" + p.rhs[i] +
                             "' reused inside production '" + p.name +
                             "'; it may only introduce extension syntax");
    }
  }

  r.composable = r.problems.empty();
  return r;
}

std::vector<std::string> composedConflicts(
    const GrammarFragment& host,
    const std::vector<const GrammarFragment*>& extensions) {
  std::vector<std::string> out;
  grammar::Grammar g;
  DiagnosticEngine diags;
  std::vector<const GrammarFragment*> all{&host};
  all.insert(all.end(), extensions.begin(), extensions.end());
  if (!ext::composeGrammar(all, g, diags)) {
    for (const auto& d : diags.all()) out.push_back(d.message);
    return out;
  }
  parse::LalrTables t = parse::LalrTables::build(g);
  for (const auto& c : t.conflicts()) out.push_back(c.description);
  return out;
}

} // namespace mmx::analysis
