// Parallel-safety / race detection over the loop IR (the analysis the
// paper's §III-C auto-parallelizer and §V `parallelize` clause lean on).
//
// For every `For` loop the pass computes per-iteration read/write effects
// with a symbolic walk over the body (affine index expressions in the
// loop variable, mixed-radix div/mod digit chains, loop-invariant values
// via constant/shape propagation) and classifies the loop:
//
//   Safe      — iterations are independent: every store to a matrix that
//               outlives the iteration lands at an index that provably
//               differs across iterations, no scalar local carries a
//               value from one iteration to the next, and the body has
//               no IO or other observable side effects.
//   Reduction — the only loop-carried dependence is `acc = acc op e`
//               with op in {+, *, min, max}. Recognized so drivers can
//               report it distinctly; the interpreter's parallel-for
//               gives workers private frames (scalar writes are
//               discarded), so reductions still must run serially today.
//   Unsafe    — a data race or semantic change was detected (or could
//               not be ruled out): overlapping matrix stores, a scalar
//               read-before-write across iterations, IO, break from the
//               loop, ...
//
// Function calls are handled compositionally: summarizeModule computes
// bottom-up effect summaries (IO, which Mat params are written, which
// params the return may alias) so a loop body calling helpers is not
// conservatively rejected.
//
// enforceParallelSafety applies the policy: auto-parallelized loops that
// are not Safe are demoted to serial (warning under -Wparallel); loops
// the user explicitly marked with `parallelize` raise an error under
// --strict-parallel (warning otherwise) and are demoted too, so the
// interpreter never executes a racy schedule.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "support/diag.hpp"

namespace mmx::analysis {

/// Per-function effect summary, computed bottom-up over the call graph
/// (optimistic start + monotone fixpoint, so recursion converges).
struct FnSummary {
  /// Performs IO or reads runtime-mutable state (print*, writeMatrix,
  /// refCount, ...) — directly or through a callee.
  bool hasIO = false;
  /// writesParam[i]: the i-th parameter's matrix buffer may be stored to.
  std::vector<bool> writesParam;
  /// retMayAliasParam[i]: some returned matrix may alias parameter i
  /// (e.g. returning the argument of checkMatrixMeta()).
  std::vector<bool> retMayAliasParam;
};

/// Summaries for every function of `m`, keyed by function pointer.
std::map<const ir::Function*, FnSummary> summarizeModule(const ir::Module& m);

/// Classification of one For loop.
enum class LoopClass : uint8_t { Safe, Reduction, Unsafe };

const char* loopClassName(LoopClass c);

struct LoopFinding {
  const ir::Stmt* loop = nullptr;    // the For statement
  const ir::Function* fn = nullptr;  // enclosing function
  LoopClass cls = LoopClass::Safe;
  /// Human-readable reason for a non-Safe classification, e.g.
  /// "scalar 'sum' carries a value across iterations".
  std::string detail;
  /// Slots of the offending (Unsafe) or accumulating (Reduction) locals.
  std::vector<int32_t> vars;
};

/// The analysis context: builds call summaries and per-function constant
/// environments once, then classifies loops on demand.
class ParSafe {
public:
  explicit ParSafe(const ir::Module& m);
  ~ParSafe();

  /// Classifies one For loop of `f` (must be a Stmt::K::For).
  LoopFinding classifyLoop(const ir::Function& f, const ir::Stmt& loop) const;

  /// Classifies every For loop of every function, in program order.
  std::vector<LoopFinding> analyzeAll() const;

  const std::map<const ir::Function*, FnSummary>& summaries() const {
    return summaries_;
  }

private:
  struct FnCtx; // per-function cached constprop results
  const FnCtx& ctx(const ir::Function& f) const;

  const ir::Module& mod_;
  std::map<const ir::Function*, FnSummary> summaries_;
  mutable std::map<const ir::Function*, std::unique_ptr<FnCtx>> ctx_;
};

struct ParSafeOptions {
  bool warnParallel = true;    // -Wparallel: warn on demoted auto loops
  bool strictParallel = false; // --strict-parallel: unsafe `parallelize` = error
};

/// Runs ParSafe over `m` and demotes every `parallel` For whose
/// classification is not Safe (clearing Stmt::parallel in place).
/// Diagnostics name the loop and the offending variables:
///   - auto-parallelized (Par::Auto): warning when opts.warnParallel;
///   - explicit `parallelize` (Par::Explicit): error when
///     opts.strictParallel, warning otherwise.
/// Returns the findings for every demoted loop.
std::vector<LoopFinding> enforceParallelSafety(ir::Module& m,
                                               DiagnosticEngine& diags,
                                               const ParSafeOptions& opts);

/// Renders `analyzeAll()` findings as a human-readable report (one line
/// per loop: function, loop name, classification, detail) — the output of
/// `mmc --analyze`.
std::string renderAnalysis(const ir::Module& m,
                           const std::vector<LoopFinding>& findings);

} // namespace mmx::analysis
