// Interprocedural symbolic shape & bounds verification over the lowered
// IR — the reproduction's SAC/ABCD-style guard-elision pass (ISSUE 3).
//
// The pass extends the constprop shape lattice to symbolic dimensions:
// every int-typed slot carries an affine form over interned atoms
// (dimSize(value, k), int parameters, loop induction ranges), and every
// Mat-typed slot carries a value identity plus per-dimension forms. A
// forward fixpoint over the structured IR propagates these through
// assignments, with-loop nests, matrixMap and call summaries, then
// classifies every runtime guard the backends emit:
//
//   proven-safe      the guard can never fire — codegen may elide it
//                    (--bounds-checks=auto), recorded in the GuardPlan;
//   proven-violating the guard fires whenever it is evaluated — reported
//                    at compile time against the extension-stamped source
//                    range (warning under -Wshape, error under
//                    --strict-shape);
//   unknown          kept as emitted.
//
// Counters are mode-independent: `elided` counts proven-safe sites even
// when --bounds-checks=on keeps them, so auto-vs-on runs compare cleanly.
#pragma once

#include <cstdint>

#include "ir/guards.hpp"
#include "ir/ir.hpp"
#include "support/diag.hpp"

namespace mmx::analysis {

struct ShapeCheckOptions {
  bool warnShape = true;    // report proven violations as warnings
  bool strictShape = false; // ... as errors instead
};

/// Per-module guard census. A "site" is one guarded IR node (an indexing
/// expression counts once however many dimensions it checks).
struct ShapeCheckStats {
  uint64_t guardsTotal = 0;     // statically enumerated guard sites
  uint64_t guardsSafe = 0;      // proven redundant (elidable)
  uint64_t guardsViolating = 0; // proven to fail whenever evaluated
  uint64_t borrowedParams = 0;  // retain/release pairs proven elidable

  uint64_t guardsKept() const { return guardsTotal - guardsSafe; }
};

/// Runs the verification over `m`, filling `plan` with the blessed guard
/// sites and borrowed parameters, and reporting proven violations on
/// `diags` per `opts`. The returned stats feed the
/// shapecheck.guards.{elided,kept,violations} counters.
ShapeCheckStats checkShapes(const ir::Module& m, ir::GuardPlan& plan,
                            DiagnosticEngine& diags,
                            const ShapeCheckOptions& opts = {});

} // namespace mmx::analysis
