#include "analysis/uniqueness.hpp"

#include <set>

namespace mmx::analysis {

// ---------------------------------------------------------------------------
// Builtin classification. interp/builtins.cpp is the ground truth: every
// builtin there either allocates a fresh result, merely reads its
// arguments, or observes refcounts. Anything not listed is treated as
// capturing (conservative), so adding a builtin without updating these
// tables can only suppress rewrites, never enable a wrong one.

bool builtinReturnsFresh(const std::string& callee) {
  static const std::set<std::string> k = {"initMatrix", "cloneMatrix",
                                          "readMatrix", "synthSsh",
                                          "connComp",   "detectEddies"};
  return k.count(callee) != 0;
}

bool builtinObservesRefcount(const std::string& callee) {
  return callee == "refCount" || callee == "rcLive";
}

bool builtinBorrowsArgs(const std::string& callee) {
  // matToFloat is deliberately absent: it may return its argument's buffer
  // unchanged when the element type already matches.
  static const std::set<std::string> k = {
      "initMatrix", "cloneMatrix",     "readMatrix",      "synthSsh",
      "connComp",   "detectEddies",    "writeMatrix",     "checkGenBounds",
      "checkMatrixMeta", "numThreads", "printInt",        "printFloat",
      "printBool",  "printStr",        "printShape",      "sqrtF",
      "absF",       "absI"};
  return k.count(callee) != 0;
}

bool builtinPureScalar(const std::string& callee) {
  return callee == "sqrtF" || callee == "absF" || callee == "absI";
}

namespace {

bool isMatVar(const ir::Expr& e) {
  return e.k == ir::Expr::K::Var && e.ty == ir::Ty::Mat;
}

/// True when evaluating `e` yields a Mat buffer freshly allocated by the
/// expression itself: with-loop result allocations, slices, range
/// literals, and elementwise/matmul arithmetic all produce new buffers.
bool freshMatExpr(const ir::Expr& e) {
  if (e.ty != ir::Ty::Mat) return false;
  switch (e.k) {
    case ir::Expr::K::Call:
      return builtinReturnsFresh(e.s);
    case ir::Expr::K::Index:
    case ir::Expr::K::RangeLit:
    case ir::Expr::K::Arith:
    case ir::Expr::K::Cmp:
    case ir::Expr::K::Neg:
    case ir::Expr::K::Not:
      return true;
    default:
      return false;
  }
}

const FnSummary* lookupSummary(const SummaryMap& m, const std::string& name) {
  auto it = m.find(name);
  return it == m.end() ? nullptr : &it->second;
}

/// Mat Var slots appearing anywhere under `e`.
void collectMatVars(const ir::Expr& e, std::vector<int32_t>& out) {
  forEachExpr(e, [&](const ir::Expr& x) {
    if (isMatVar(x)) out.push_back(x.slot);
  });
}

// ---------------------------------------------------------------------------
// Per-function summary computation (one improvement round).

/// Transitive closure of "may alias a slot in `seed`" over handle copies
/// and alias-returning calls, flow-insensitively.
std::vector<bool> aliasClosure(const ir::Function& f,
                               const std::vector<bool>& seed,
                               const SummaryMap& sums) {
  std::vector<bool> alias = seed;
  bool changed = true;
  while (changed) {
    changed = false;
    forEachStmt(*f.body, [&](const ir::Stmt& s) {
      auto mark = [&](int32_t slot) {
        if (slot >= 0 && static_cast<size_t>(slot) < alias.size() &&
            !alias[slot])
          alias[slot] = changed = true;
      };
      if (s.k == ir::Stmt::K::Assign && !s.exprs.empty() && s.exprs[0] &&
          f.locals[s.slot].ty == ir::Ty::Mat) {
        const ir::Expr& e = *s.exprs[0];
        if (e.k == ir::Expr::K::Var) {
          if (alias[e.slot]) mark(s.slot);
        } else if (!freshMatExpr(e)) {
          // e.g. matToFloat(p): the result may alias any Mat operand.
          std::vector<int32_t> vars;
          collectMatVars(e, vars);
          for (int32_t v : vars)
            if (alias[v]) mark(s.slot);
        }
      } else if (s.k == ir::Stmt::K::CallAssign) {
        const FnSummary* sum = lookupSummary(sums, s.callee);
        if (sum && sum->returnsFresh) return;
        bool anyAliasedArg = false;
        for (const auto& a : s.exprs)
          if (a && isMatVar(*a) && alias[a->slot]) anyAliasedArg = true;
        if (anyAliasedArg)
          for (int32_t d : s.dsts)
            if (d >= 0 && f.locals[d].ty == ir::Ty::Mat) mark(d);
      }
    });
  }
  return alias;
}

/// "Escaping" uses that disqualify borrowing: the slot's handle leaves the
/// function through a return value, a capturing builtin, an observing
/// builtin, or a callee that does not borrow the matching parameter.
std::vector<bool> escapingUse(const ir::Function& f, const SummaryMap& sums) {
  std::vector<bool> esc(f.locals.size(), false);
  forEachStmt(*f.body, [&](const ir::Stmt& s) {
    forEachStmtExpr(s, [&](const ir::Expr& root) {
      forEachExpr(root, [&](const ir::Expr& x) {
        if (x.k != ir::Expr::K::Call || builtinBorrowsArgs(x.s)) return;
        for (const auto& a : x.args)
          if (a && isMatVar(*a)) esc[a->slot] = true;
      });
    });
    if (s.k == ir::Stmt::K::Ret) {
      for (const auto& e : s.exprs) {
        if (!e || e->ty != ir::Ty::Mat || freshMatExpr(*e)) continue;
        std::vector<int32_t> vars;
        collectMatVars(*e, vars);
        for (int32_t v : vars) esc[v] = true;
      }
    } else if (s.k == ir::Stmt::K::CallAssign) {
      const FnSummary* sum = lookupSummary(sums, s.callee);
      for (size_t i = 0; i < s.exprs.size(); ++i) {
        const auto& a = s.exprs[i];
        if (!a || !isMatVar(*a)) continue;
        bool borrowed = sum && i < sum->borrowedParams.size() &&
                        sum->borrowedParams[i];
        if (!borrowed) esc[a->slot] = true;
      }
    }
  });
  return esc;
}

FnSummary summarizeFunction(const ir::Function& f, const SummaryMap& sums) {
  FnSummary out;
  out.borrowedParams.assign(f.numParams, true);
  if (!f.body) {
    out.returnsFresh = true;
    return out;
  }

  std::vector<bool> esc = escapingUse(f, sums);
  for (size_t p = 0; p < f.numParams; ++p) {
    if (f.locals[p].ty != ir::Ty::Mat) continue; // scalars: trivially borrowed
    std::vector<bool> seed(f.locals.size(), false);
    seed[p] = true;
    std::vector<bool> alias = aliasClosure(f, seed, sums);
    for (size_t s = 0; s < alias.size(); ++s)
      if (alias[s] && esc[s]) out.borrowedParams[p] = false;
  }

  // Fresh-slot greatest fixpoint: a slot is fresh when every definition is
  // a fresh expression, a copy of a fresh slot, or a fresh-returning call.
  // Cyclic local copies may keep each other fresh — sound, because locals
  // die at return and the single-Mat-return rule below prevents handing
  // the caller two aliases of one buffer.
  std::vector<bool> freshSlot(f.locals.size(), true);
  for (size_t p = 0; p < f.numParams; ++p) freshSlot[p] = false;
  bool changed = true;
  while (changed) {
    changed = false;
    forEachStmt(*f.body, [&](const ir::Stmt& s) {
      auto kill = [&](int32_t slot) {
        if (slot >= 0 && freshSlot[slot]) freshSlot[slot] = false, changed = true;
      };
      if (s.k == ir::Stmt::K::Assign && f.locals[s.slot].ty == ir::Ty::Mat) {
        const ir::Expr& e = *s.exprs[0];
        if (e.k == ir::Expr::K::Var) {
          if (!freshSlot[e.slot]) kill(s.slot);
        } else if (!freshMatExpr(e)) {
          kill(s.slot);
        }
      } else if (s.k == ir::Stmt::K::CallAssign) {
        const FnSummary* sum = lookupSummary(sums, s.callee);
        if (!sum || !sum->returnsFresh)
          for (int32_t d : s.dsts)
            if (d >= 0 && f.locals[d].ty == ir::Ty::Mat) kill(d);
      }
    });
  }

  out.returnsFresh = true;
  forEachStmt(*f.body, [&](const ir::Stmt& s) {
    if (s.k != ir::Stmt::K::Ret) return;
    int matRets = 0;
    for (const auto& e : s.exprs) {
      if (!e || e->ty != ir::Ty::Mat) continue;
      ++matRets;
      bool fresh = freshMatExpr(*e) ||
                   (e->k == ir::Expr::K::Var && freshSlot[e->slot]);
      if (!fresh) out.returnsFresh = false;
    }
    // Two Mat returns could be two handles to one buffer; don't promise
    // freshness for tuple returns.
    if (matRets > 1) out.returnsFresh = false;
  });
  return out;
}

} // namespace

SummaryMap summarizeModule(const ir::Module& m) {
  SummaryMap sums;
  for (const auto& f : m.functions) {
    if (!f) continue;
    FnSummary init;
    init.borrowedParams.assign(f->numParams, false);
    init.returnsFresh = false;
    sums[f->name] = init;
  }
  // Improve monotonically from the conservative bottom; recursion settles
  // wherever it can still be proved without assuming itself.
  for (size_t round = 0; round <= m.functions.size() + 1; ++round) {
    bool changed = false;
    for (const auto& f : m.functions) {
      if (!f) continue;
      FnSummary next = summarizeFunction(*f, sums);
      FnSummary& cur = sums[f->name];
      if (next.borrowedParams != cur.borrowedParams ||
          next.returnsFresh != cur.returnsFresh) {
        cur = next;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return sums;
}

// ---------------------------------------------------------------------------
// Per-function forward uniqueness.

namespace {

/// Slots whose refcount the program may observe, flow-insensitively and
/// closed over handle aliasing. A slot in this set is never unique: a
/// rewrite that changed its buffer's refcount would change what
/// refCount()/rcLive() print.
SlotSet observedSlots(const ir::Function& f, const SummaryMap& sums) {
  std::vector<bool> seed(f.locals.size(), false);
  forEachStmt(*f.body, [&](const ir::Stmt& s) {
    forEachStmtExpr(s, [&](const ir::Expr& root) {
      forEachExpr(root, [&](const ir::Expr& x) {
        if (x.k != ir::Expr::K::Call) return;
        if (!builtinObservesRefcount(x.s)) return;
        for (const auto& a : x.args)
          if (a && isMatVar(*a)) seed[a->slot] = true;
      });
    });
    if (s.k == ir::Stmt::K::CallAssign) {
      // A callee that keeps (or observes) an argument makes its refcount
      // observable beyond this function's control.
      const FnSummary* sum = lookupSummary(sums, s.callee);
      for (size_t i = 0; i < s.exprs.size(); ++i) {
        const auto& a = s.exprs[i];
        if (!a || !isMatVar(*a)) continue;
        bool borrowed = sum && i < sum->borrowedParams.size() &&
                        sum->borrowedParams[i];
        if (!borrowed) seed[a->slot] = true;
      }
    }
  });

  // Close over aliasing in both directions: observation of either end of a
  // handle copy taints the shared buffer.
  bool changed = true;
  while (changed) {
    changed = false;
    forEachStmt(*f.body, [&](const ir::Stmt& s) {
      auto link = [&](int32_t a, int32_t b) {
        if (a < 0 || b < 0) return;
        bool v = seed[a] || seed[b];
        if (v && !seed[a]) seed[a] = changed = true;
        if (v && !seed[b]) seed[b] = changed = true;
      };
      if (s.k == ir::Stmt::K::Assign && f.locals[s.slot].ty == ir::Ty::Mat &&
          !s.exprs.empty() && s.exprs[0]) {
        const ir::Expr& e = *s.exprs[0];
        if (e.k == ir::Expr::K::Var) {
          link(s.slot, e.slot);
        } else if (!freshMatExpr(e)) {
          std::vector<int32_t> vars;
          collectMatVars(e, vars);
          for (int32_t v : vars) link(s.slot, v);
        }
      } else if (s.k == ir::Stmt::K::CallAssign) {
        const FnSummary* sum = lookupSummary(sums, s.callee);
        if (sum && sum->returnsFresh) return;
        for (int32_t d : s.dsts) {
          if (d < 0 || f.locals[d].ty != ir::Ty::Mat) continue;
          for (const auto& a : s.exprs)
            if (a && isMatVar(*a)) link(d, a->slot);
        }
      }
    });
  }

  SlotSet out(f.locals.size());
  for (size_t i = 0; i < seed.size(); ++i)
    if (seed[i]) out.set(static_cast<int32_t>(i));
  return out;
}

struct UniqueTransfer {
  using State = SlotSet;

  const ir::Function& f;
  const SummaryMap& sums;
  const Liveness& live;
  Uniqueness& out;

  State copy(const State& s) { return s; }
  bool join(State& a, const State& b) { return a.intersectWith(b); }

  void record(const ir::Stmt& s, const State& st) {
    auto it = out.uniqueBefore.find(&s);
    if (it == out.uniqueBefore.end())
      out.uniqueBefore.emplace(&s, st);
    else
      it->second.intersectWith(st);
  }

  void transfer(const ir::Stmt& s, State& st) {
    record(s, st);
    // Calls evaluated by this statement may capture or observe Mat args.
    forEachStmtExpr(s, [&](const ir::Expr& root) {
      forEachExpr(root, [&](const ir::Expr& x) {
        if (x.k != ir::Expr::K::Call || builtinBorrowsArgs(x.s)) return;
        for (const auto& a : x.args)
          if (a && isMatVar(*a)) st.set(a->slot, false);
      });
    });
    switch (s.k) {
      case ir::Stmt::K::Assign: {
        if (f.locals[s.slot].ty != ir::Ty::Mat) break;
        const ir::Expr& e = *s.exprs[0];
        bool u = false;
        if (e.k == ir::Expr::K::Var) {
          // A handle copy transfers uniqueness only when the source handle
          // is dead afterwards (the `A = %wres` closing a with-loop);
          // otherwise two live handles share the buffer.
          u = st.get(e.slot) && !live.isLiveAfter(&s, e.slot);
          st.set(e.slot, false);
        } else {
          u = freshMatExpr(e);
        }
        st.set(s.slot, u && !out.observed.get(s.slot));
        break;
      }
      case ir::Stmt::K::CallAssign: {
        const FnSummary* sum = lookupSummary(sums, s.callee);
        for (size_t i = 0; i < s.exprs.size(); ++i) {
          const auto& a = s.exprs[i];
          if (!a || !isMatVar(*a)) continue;
          bool borrowed = sum && i < sum->borrowedParams.size() &&
                          sum->borrowedParams[i];
          if (!borrowed) st.set(a->slot, false);
        }
        for (int32_t d : s.dsts)
          if (d >= 0 && f.locals[d].ty == ir::Ty::Mat)
            st.set(d, sum && sum->returnsFresh && !out.observed.get(d));
        break;
      }
      default:
        // StoreFlat/IndexStore mutate the buffer, not the handle count.
        break;
    }
  }
};

} // namespace

Uniqueness analyzeUniqueness(const ir::Function& f, const SummaryMap& sums,
                             const Liveness& live) {
  Uniqueness out;
  out.observed = SlotSet(f.locals.size());
  if (!f.body) return out;
  out.observed = observedSlots(f, sums);
  UniqueTransfer t{f, sums, live, out};
  ForwardEngine<UniqueTransfer> fwd(t);
  // Parameters enter shared with the caller: nothing is unique on entry.
  fwd.run(*f.body, SlotSet(f.locals.size()));
  return out;
}

} // namespace mmx::analysis
