// SaC-style uniqueness facts over the loop IR (ISSUE 6): which Mat slots
// provably hold the *only live reference* to their buffer at a program
// point. The runtime refcounts buffers (ext_refcount); a slot is "unique"
// here exactly when the optimizer may mutate or steal its buffer without
// any other live handle — or a refCount()/rcLive() observation — being
// able to tell the difference.
//
// Three layers, matching the tentpole:
//   1. computeLiveness (liveness.hpp): which handles may still be read.
//   2. summarizeModule: bottom-up interprocedural summaries — per callee,
//      which Mat parameters are merely *borrowed* (callee keeps no alias:
//      not returned, not passed on to a non-borrowing callee, refcount not
//      observed) and whether every returned Mat is *fresh* (a buffer
//      allocated by the callee that no parameter aliases). Recursion
//      settles at the conservative bottom (borrowed=false, fresh=false)
//      because summaries start there and only improve monotonically.
//   3. analyzeUniqueness: a forward must-analysis (intersection join) per
//      function. Fresh right-hand sides mint uniqueness; a handle copy
//      `A = B` transfers it when B's handle is dead afterwards (the
//      stale-temp pattern every with-loop lowering produces: `A = %wres`);
//      calls strip it from arguments the callee does not borrow; slots
//      whose refcount the program observes anywhere never become unique,
//      so rewrites cannot change what refCount()/rcLive() print.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/liveness.hpp"
#include "ir/ir.hpp"

namespace mmx::analysis {

/// Interprocedural facts for one function.
struct FnSummary {
  /// Per parameter slot: true when the callee only borrows the argument.
  /// Non-Mat parameters are trivially borrowed.
  std::vector<bool> borrowedParams;
  /// True when every Mat value the function returns is a freshly allocated
  /// buffer no parameter (and no second returned handle) aliases.
  bool returnsFresh = false;
};

using SummaryMap = std::map<std::string, FnSummary>;

/// Builtin classification shared by summaries, the per-function analysis,
/// and the optimizer's pattern matchers (interp/builtins.cpp is the
/// ground truth these tables mirror).
bool builtinReturnsFresh(const std::string& callee);
bool builtinBorrowsArgs(const std::string& callee);
bool builtinObservesRefcount(const std::string& callee);
/// Pure scalar math (sqrtF/absF/absI): safe to duplicate, delete, or
/// reorder — the only calls the optimizer tolerates inside fused bodies.
bool builtinPureScalar(const std::string& callee);

/// Bottom-up summary computation over the whole module.
SummaryMap summarizeModule(const ir::Module& m);

struct Uniqueness {
  /// Intersection over every abstract visit of the Mat slots provably
  /// holding the only live reference to their buffer *before* each
  /// statement.
  std::map<const ir::Stmt*, SlotSet> uniqueBefore;
  /// Slots whose refcount the program may observe (directly or through a
  /// handle copy / callee) — never reported unique.
  SlotSet observed;

  bool isUniqueBefore(const ir::Stmt* s, int32_t slot) const {
    auto it = uniqueBefore.find(s);
    return it != uniqueBefore.end() && it->second.get(slot);
  }
};

Uniqueness analyzeUniqueness(const ir::Function& f, const SummaryMap& summaries,
                             const Liveness& live);

} // namespace mmx::analysis
