// Shared vocabulary between the shapecheck analysis (src/analysis) and the
// backends (C emitter, interpreter): which runtime guards may be dropped.
//
// The analysis produces a GuardPlan; the backends consume it under a
// BoundsCheckMode. The plan is keyed by the *address* of the guarded IR
// node (an Expr for DimSize/LoadFlat/Index/checkMatrixMeta/Mat arithmetic,
// a Stmt for StoreFlat/IndexStore/checkGenBounds call statements) — node
// addresses are unique within a module and stable once lowering is done.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>

namespace mmx::ir {

struct Function;

/// --bounds-checks: On emits every guard (the pre-analysis output), Off
/// drops all of them unconditionally (trusted input), Auto drops exactly
/// the guards the shapecheck pass proved redundant.
enum class BoundsCheckMode : uint8_t { On, Off, Auto };

/// Result of the shapecheck verification pass.
struct GuardPlan {
  /// IR nodes (Expr* or Stmt*) whose runtime guard is proven redundant.
  std::unordered_set<const void*> safe;
  /// Per function: Mat-typed parameter slots the body provably never
  /// writes through, so the entry retain / cleanup release pair can go
  /// (the caller's reference keeps the value alive for the whole call).
  std::map<const Function*, std::set<int32_t>> borrowedParams;
  /// initMatrix Call-expr addresses (genarray results) whose following
  /// loop nest provably stores to every element (lo == 0 and hi == shape
  /// in every dimension), so the backends may allocate the result
  /// uninitialized instead of zero-filling it first.
  std::unordered_set<const void*> fullyWritten;

  bool blessed(const void* node) const { return safe.count(node) != 0; }
};

} // namespace mmx::ir
