#include "ir/optimize.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/depend.hpp"
#include "analysis/liveness.hpp"
#include "analysis/uniqueness.hpp"
#include "support/metrics.hpp"

namespace mmx::ir {

namespace {

namespace an = mmx::analysis;

#define OPTDBG(...)                                                            \
  do {                                                                         \
    if (getenv("MMX_OPT_DEBUG")) fprintf(stderr, "[opt] " __VA_ARGS__);        \
  } while (0)

// ---------------------------------------------------------------------------
// Block-scoped value numbering. Numbers are meaningful only along one
// sequential scan: equal numbers imply equal runtime values at their
// respective evaluation points (given the invalidation discipline below);
// unequal numbers imply nothing. Mat slots are numbered by *buffer
// identity* — a number minted by an initMatrix right-hand side denotes
// that one allocation, and carries the allocation's element code and
// extent numbers, which is how `dimSize(A, k)` resolves to the same
// number as the `%wsh` scalar the allocation was built from.

class VN {
public:
  explicit VN(size_t numSlots) : slotVN_(numSlots, -1) {}

  struct Buf {
    int elem = -1;         // rt::Elem code from the initMatrix call
    std::vector<int> dims; // value numbers of the allocation extents
  };

  int fresh() { return next_++; }

  int ofSlot(int32_t s) {
    if (s < 0 || static_cast<size_t>(s) >= slotVN_.size()) return fresh();
    if (slotVN_[s] < 0) slotVN_[s] = fresh();
    return slotVN_[s];
  }
  void setSlot(int32_t s, int vn) {
    if (s >= 0 && static_cast<size_t>(s) < slotVN_.size()) slotVN_[s] = vn;
  }
  void invalidate(int32_t s) { setSlot(s, fresh()); }

  const Buf* buf(int vn) const {
    auto it = bufs_.find(vn);
    return it == bufs_.end() ? nullptr : &it->second;
  }
  const Buf* bufOfSlot(int32_t s) { return buf(ofSlot(s)); }

  int intern(const std::string& key) {
    auto [it, inserted] = table_.try_emplace(key, next_);
    if (inserted) ++next_;
    return it->second;
  }
  int constIVN(int32_t v) { return intern("i:" + std::to_string(v)); }
  int mulVN(int a, int b) {
    return intern("A" + std::to_string(static_cast<int>(ArithOp::Mul)) + ":" +
                  std::to_string(a) + ":" + std::to_string(b));
  }
  int addVN(int a, int b) {
    return intern("A" + std::to_string(static_cast<int>(ArithOp::Add)) + ":" +
                  std::to_string(a) + ":" + std::to_string(b));
  }

  /// Value number of `e`, or -1 when opaque (calls, loads, Mat values).
  int ofExpr(const Expr& e) {
    auto sub = [&](size_t i) -> int {
      return i < e.args.size() && e.args[i] ? ofExpr(*e.args[i]) : -1;
    };
    switch (e.k) {
      case Expr::K::ConstI:
        return constIVN(e.i);
      case Expr::K::ConstB:
        return intern("b:" + std::to_string(e.i));
      case Expr::K::ConstF: {
        uint32_t bits = 0;
        std::memcpy(&bits, &e.f, sizeof bits);
        return intern("f:" + std::to_string(bits));
      }
      case Expr::K::Var:
        return ofSlot(e.slot);
      case Expr::K::Arith: {
        if (e.ty == Ty::Mat) return -1;
        int a = sub(0), b = sub(1);
        if (a < 0 || b < 0) return -1;
        return intern("A" + std::to_string(static_cast<int>(e.aop)) + ":" +
                      std::to_string(a) + ":" + std::to_string(b));
      }
      case Expr::K::Cmp: {
        if (e.ty == Ty::Mat) return -1;
        int a = sub(0), b = sub(1);
        if (a < 0 || b < 0) return -1;
        return intern("C" + std::to_string(static_cast<int>(e.cop)) + ":" +
                      std::to_string(a) + ":" + std::to_string(b));
      }
      case Expr::K::Logic: {
        int a = sub(0), b = sub(1);
        if (a < 0 || b < 0) return -1;
        return intern("L" + std::to_string(static_cast<int>(e.lop)) + ":" +
                      std::to_string(a) + ":" + std::to_string(b));
      }
      case Expr::K::Not: {
        int a = sub(0);
        return a < 0 ? -1 : intern("n:" + std::to_string(a));
      }
      case Expr::K::Neg: {
        if (e.ty == Ty::Mat) return -1;
        int a = sub(0);
        return a < 0 ? -1 : intern("g:" + std::to_string(a));
      }
      case Expr::K::Cast: {
        int a = sub(0);
        if (a < 0) return -1;
        return intern("t" + std::to_string(static_cast<int>(e.ty)) + ":" +
                      std::to_string(a));
      }
      case Expr::K::DimSize: {
        if (e.args.size() < 2 || !e.args[0] || !e.args[1]) return -1;
        if (e.args[0]->k != Expr::K::Var) return -1;
        int bv = ofSlot(e.args[0]->slot);
        if (const Buf* b = buf(bv))
          if (e.args[1]->k == Expr::K::ConstI && e.args[1]->i >= 0 &&
              static_cast<size_t>(e.args[1]->i) < b->dims.size())
            return b->dims[e.args[1]->i];
        int d = sub(1);
        if (d < 0) return -1;
        return intern("d:" + std::to_string(bv) + ":" + std::to_string(d));
      }
      default:
        return -1; // Call, Index, RangeLit, LoadFlat: opaque
    }
  }

  /// Effects of one *leaf* statement (compound statements go through
  /// invalidateWritesIn).
  void applyShallow(const Function& f, const Stmt& s) {
    switch (s.k) {
      case Stmt::K::Assign: {
        const Expr* e = s.exprs.empty() ? nullptr : s.exprs[0].get();
        if (!e) {
          invalidate(s.slot);
          break;
        }
        if (f.locals[s.slot].ty == Ty::Mat) {
          if (e->k == Expr::K::Var) {
            setSlot(s.slot, ofSlot(e->slot));
          } else if (isInitMatrix(*e)) {
            int bv = fresh();
            Buf b;
            b.elem = e->args[0]->i;
            for (size_t i = 1; i < e->args.size(); ++i) {
              int dv = e->args[i] ? ofExpr(*e->args[i]) : -1;
              b.dims.push_back(dv < 0 ? fresh() : dv);
            }
            bufs_[bv] = std::move(b);
            setSlot(s.slot, bv);
          } else {
            invalidate(s.slot);
          }
        } else {
          int v = ofExpr(*e);
          setSlot(s.slot, v < 0 ? fresh() : v);
        }
        break;
      }
      case Stmt::K::CallAssign:
        for (int32_t d : s.dsts) invalidate(d);
        break;
      default:
        break; // StoreFlat/IndexStore/CallStmt/Ret/...: no slot rebinding
    }
  }

  static bool isInitMatrix(const Expr& e) {
    return e.k == Expr::K::Call && e.s == "initMatrix" && !e.args.empty() &&
           e.args[0] && e.args[0]->k == Expr::K::ConstI;
  }

private:
  int next_ = 0;
  std::vector<int> slotVN_;
  std::map<std::string, int> table_;
  std::map<int, Buf> bufs_;
};

/// The lowering omits the Block wrapper around single-statement loop and
/// branch bodies. Wrap them so every structural edit below has a kid list
/// to splice into; both backends treat Block transparently, so the
/// normalized module is semantically identical. Only runs when a pass is
/// enabled — -O0 IR is never touched.
void normalizeBodies(Stmt& s) {
  if (s.k == Stmt::K::For || s.k == Stmt::K::While || s.k == Stmt::K::If) {
    for (StmtPtr& k : s.kids) {
      if (k && k->k != Stmt::K::Block) {
        std::vector<StmtPtr> one;
        one.push_back(std::move(k));
        k = block(std::move(one));
      }
    }
  }
  for (StmtPtr& k : s.kids)
    if (k) normalizeBodies(*k);
}

void invalidateWritesIn(VN& env, const Stmt& s) {
  an::forEachStmt(s, [&](const Stmt& x) {
    for (int32_t w : an::writtenSlots(x)) env.invalidate(w);
  });
}

// ---------------------------------------------------------------------------
// Small syntactic helpers.

/// Calls appearing anywhere under `e` are all pure scalar math.
bool exprCallsPure(const Expr& e) {
  bool pure = true;
  an::forEachExpr(e, [&](const Expr& x) {
    if (x.k == Expr::K::Call && !an::builtinPureScalar(x.s)) pure = false;
  });
  return pure;
}

/// The call's *arguments* are pure (the call itself is judged separately).
bool callArgsPure(const Expr& call) {
  for (const auto& a : call.args)
    if (a && !exprCallsPure(*a)) return false;
  return true;
}

/// True when some statement outside the `skip` subtree reads `slot`.
bool slotReadOutside(const Function& f, const Stmt* skip, int32_t slot) {
  bool found = false;
  std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
    if (&s == skip || found) return;
    for (int32_t r : an::readSlots(s))
      if (r == slot) {
        found = true;
        return;
      }
    for (const auto& k : s.kids)
      if (k) walk(*k);
  };
  if (f.body) walk(*f.body);
  return found;
}

// ---------------------------------------------------------------------------
// Loop-nest shape analysis: recognizes the with-loop lowering pattern (a
// perfect For chain whose innermost block holds the element stores) and
// value-numbers its bounds, store indexes, and element reads so the
// passes can compare producer against consumer symbolically.

struct StoreRec {
  Stmt* stmt = nullptr;
  int32_t slot = -1;
  int idxVN = -1;
  int bufVN = -1;
  bool bufKnown = false; // buffer traced to a tracked initMatrix
};

struct NestInfo {
  bool ok = false;         // structure recognized and analyzable
  std::vector<Stmt*> levels;
  std::vector<int32_t> ivars;
  std::vector<int> ivarVN, loVN, hiVN;
  Stmt* innerBlock = nullptr;
  std::vector<StoreRec> stores;                // top-level StoreFlats
  std::vector<std::pair<int, int>> elemLoads;  // (bufVN, idxVN) LoadFlats
  std::vector<int> otherElemReadBufs;          // Index/Call-arg element reads
  bool opaqueElemRead = false;                 // read via non-Var matrix expr
  bool cleanCalls = true;                      // only pure scalar builtins

  const StoreRec* storeFor(int bufVN) const {
    for (const StoreRec& r : stores)
      if (r.bufVN == bufVN) return &r;
    return nullptr;
  }
};

/// Mutates `env` in place: every number the result carries was minted in
/// the caller's chain, so the caller may keep interning (canonical index
/// construction, alias lookups) and compare against the result safely.
NestInfo analyzeNest(Stmt& loop, VN& env, const Function& f,
                     const std::vector<int>* presetIvarVNs) {
  NestInfo n;
  bool simple = true;

  Stmt* cur = &loop;
  while (cur && cur->k == Stmt::K::For) {
    if (cur->vecWidth != 1) simple = false;
    n.levels.push_back(cur);
    n.ivars.push_back(cur->slot);
    n.loVN.push_back(cur->exprs[0] ? env.ofExpr(*cur->exprs[0]) : -1);
    n.hiVN.push_back(cur->exprs[1] ? env.ofExpr(*cur->exprs[1]) : -1);
    size_t depth = n.levels.size() - 1;
    if (presetIvarVNs && depth < presetIvarVNs->size()) {
      env.setSlot(cur->slot, (*presetIvarVNs)[depth]);
    } else {
      env.invalidate(cur->slot);
    }
    n.ivarVN.push_back(env.ofSlot(cur->slot));
    Stmt* body = cur->kids.empty() ? nullptr : cur->kids[0].get();
    if (!body || body->k != Stmt::K::Block) return n; // ok stays false
    if (body->kids.size() == 1 && body->kids[0] &&
        body->kids[0]->k == Stmt::K::For) {
      cur = body->kids[0].get(); // perfect-nest descent
    } else {
      n.innerBlock = body;
      break;
    }
  }
  if (!n.innerBlock) return n;

  // Sequential scan of the innermost block (recursing into interior fold
  // loops / ifs), value-numbering element reads at their use points.
  std::function<void(Stmt&, bool)> scan = [&](Stmt& st, bool top) {
    an::forEachStmtExpr(st, [&](const Expr& root) {
      an::forEachExpr(root, [&](const Expr& x) {
        if (x.k == Expr::K::LoadFlat) {
          if (x.args.size() >= 2 && x.args[0] &&
              x.args[0]->k == Expr::K::Var && x.args[1]) {
            n.elemLoads.emplace_back(env.ofSlot(x.args[0]->slot),
                                     env.ofExpr(*x.args[1]));
          } else {
            n.opaqueElemRead = true;
          }
        } else if (x.k == Expr::K::Index) {
          if (!x.args.empty() && x.args[0] && x.args[0]->k == Expr::K::Var)
            n.otherElemReadBufs.push_back(env.ofSlot(x.args[0]->slot));
          else
            n.opaqueElemRead = true;
        } else if (x.k == Expr::K::Call) {
          if (!an::builtinPureScalar(x.s)) n.cleanCalls = false;
          for (const auto& a : x.args)
            if (a && a->k == Expr::K::Var && a->ty == Ty::Mat)
              n.otherElemReadBufs.push_back(env.ofSlot(a->slot));
        }
      });
    });
    switch (st.k) {
      case Stmt::K::Assign:
        if (f.locals[st.slot].ty == Ty::Mat) simple = false;
        env.applyShallow(f, st);
        break;
      case Stmt::K::StoreFlat: {
        if (!top) {
          simple = false;
          break;
        }
        StoreRec r;
        r.stmt = &st;
        r.slot = st.slot;
        r.idxVN = st.exprs[0] ? env.ofExpr(*st.exprs[0]) : -1;
        r.bufVN = env.ofSlot(st.slot);
        r.bufKnown = env.buf(r.bufVN) != nullptr;
        n.stores.push_back(r);
        break;
      }
      case Stmt::K::For:
      case Stmt::K::While:
      case Stmt::K::If:
        invalidateWritesIn(env, st);
        for (const auto& k : st.kids)
          if (k) scan(*k, false);
        break;
      case Stmt::K::Block:
        for (const auto& k : st.kids)
          if (k) scan(*k, false);
        break;
      default:
        simple = false; // IndexStore, CallStmt, CallAssign, Ret, Break, ...
    }
  };
  for (const auto& kid : n.innerBlock->kids)
    if (kid) scan(*kid, true);

  for (int v : n.loVN)
    if (v < 0) simple = false;
  for (int v : n.hiVN)
    if (v < 0) simple = false;
  // A store whose buffer two distinct records claim would confuse the
  // matchers; the lowering never produces it.
  for (size_t a = 0; a < n.stores.size(); ++a)
    for (size_t b = a + 1; b < n.stores.size(); ++b)
      if (n.stores[a].bufVN == n.stores[b].bufVN) simple = false;

  n.ok = simple && !n.levels.empty();
  return n;
}

// ---------------------------------------------------------------------------
// Pass context.

struct Ctx {
  Function& f;
  const an::SummaryMap& sums;
  const OptOptions& opts;
  OptStats& stats;
  const an::Liveness* live = nullptr;
  const an::Uniqueness* uniq = nullptr;
  int fuseCounter = 0; // unique %fuse local names
};

/// Entry env for scanning a loop body: scalars written in the loop become
/// unknown; Mat slots keep their buffer binding only when one simulated
/// pass of the body restores a buffer with the same element code and
/// extent numbers (the loop-invariant-shape case: `out` reassigned to a
/// same-shaped fresh result every iteration).
void simulateShallow(const Function& f, const Stmt& s, VN& env) {
  switch (s.k) {
    case Stmt::K::Block:
      for (const auto& k : s.kids)
        if (k) simulateShallow(f, *k, env);
      break;
    case Stmt::K::Assign:
    case Stmt::K::CallAssign:
      env.applyShallow(f, s);
      break;
    case Stmt::K::For:
    case Stmt::K::While:
    case Stmt::K::If:
      invalidateWritesIn(env, s);
      break;
    default:
      break;
  }
}

VN loopBodyEnv(const Function& f, const Stmt& loop, const VN& outer) {
  std::set<int32_t> written;
  an::forEachStmt(loop, [&](const Stmt& x) {
    for (int32_t w : an::writtenSlots(x)) written.insert(w);
  });
  VN env = outer;
  std::vector<int32_t> mats;
  for (int32_t w : written) {
    if (f.locals[w].ty == Ty::Mat)
      mats.push_back(w);
    else
      env.invalidate(w);
  }
  const Stmt* body = loop.kids.empty() ? nullptr : loop.kids[0].get();
  if (!body) return env;
  std::set<int32_t> dropped;
  for (size_t round = 0; round <= mats.size(); ++round) {
    VN scratch = env;
    simulateShallow(f, *body, scratch);
    bool any = false;
    for (int32_t mw : mats) {
      if (dropped.count(mw)) continue;
      const VN::Buf* be = env.bufOfSlot(mw);
      const VN::Buf* bf = scratch.bufOfSlot(mw);
      bool invariant = be && bf && be->elem == bf->elem && be->dims == bf->dims;
      if (!invariant) {
        env.invalidate(mw);
        dropped.insert(mw);
        any = true;
      }
    }
    if (!any) break;
  }
  return env;
}

// ---------------------------------------------------------------------------
// Expression/statement rewriting used by fusion.

struct FuseRewrite {
  const std::map<int32_t, int32_t>& ivarMap;   // consumer ivar -> producer ivar
  const std::map<int32_t, int32_t>& loadSlots; // mat slot -> %fuse slot
  const Function& f;
};

void rewriteExpr(ExprPtr& e, const FuseRewrite& rw) {
  if (!e) return;
  if (e->k == Expr::K::LoadFlat && !e->args.empty() && e->args[0] &&
      e->args[0]->k == Expr::K::Var) {
    auto it = rw.loadSlots.find(e->args[0]->slot);
    if (it != rw.loadSlots.end()) {
      Ty ty = e->ty;
      e = var(it->second, ty);
      return;
    }
  }
  if (e->k == Expr::K::Var) {
    auto it = rw.ivarMap.find(e->slot);
    if (it != rw.ivarMap.end()) e->slot = it->second;
    return;
  }
  for (ExprPtr& a : e->args) rewriteExpr(a, rw);
  for (IndexDim& d : e->dims) {
    rewriteExpr(d.a, rw);
    rewriteExpr(d.b, rw);
  }
}

void rewriteStmt(Stmt& s, const FuseRewrite& rw) {
  for (ExprPtr& e : s.exprs) rewriteExpr(e, rw);
  for (IndexDim& d : s.dims) {
    rewriteExpr(d.a, rw);
    rewriteExpr(d.b, rw);
  }
  for (StmtPtr& k : s.kids)
    if (k) rewriteStmt(*k, rw);
}

// ---------------------------------------------------------------------------
// Fusion: producer nest at kids[i], glue statements, then a consumer nest
// over the same iteration space whose only reads of the producer's result
// are at the just-stored index. The consumer body migrates into the
// producer's innermost block, reading the freshly computed element from a
// scalar instead of the temporary matrix.

bool tryFuse(Ctx& c, Stmt& blk, size_t i, VN& env) {
  Stmt* pLoop = blk.kids[i].get();
  VN env2 = env; // one numbering chain through P, the glue, and C
  NestInfo P = analyzeNest(*pLoop, env2, c.f, nullptr);
  if (!P.ok || !P.cleanCalls || P.opaqueElemRead || P.stores.empty())
    return false;
  for (const StoreRec& r : P.stores)
    if (!r.bufKnown || r.idxVN < 0) return false;

  std::set<int32_t> pReads, pWrites;
  an::forEachStmt(*pLoop, [&](const Stmt& x) {
    for (int32_t r : an::readSlots(x)) pReads.insert(r);
    for (int32_t w : an::writtenSlots(x)) pWrites.insert(w);
  });

  invalidateWritesIn(env2, *pLoop);

  std::set<int> pStoreBufs;
  for (const StoreRec& r : P.stores) pStoreBufs.insert(r.bufVN);

  // Walk the glue. Any dependency on the producer, or an element read of a
  // produced buffer, ends the fusion window.
  size_t j = i + 1;
  for (; j < blk.kids.size(); ++j) {
    Stmt* g = blk.kids[j].get();
    if (!g) continue;
    if (g->k == Stmt::K::For) break; // consumer candidate
    if (g->k != Stmt::K::Assign && g->k != Stmt::K::CallStmt) return false;
    if (g->k == Stmt::K::CallStmt) {
      const Expr* call = g->exprs.empty() ? nullptr : g->exprs[0].get();
      if (!call || call->k != Expr::K::Call || !an::builtinBorrowsArgs(call->s))
        return false;
    }
    for (int32_t w : an::writtenSlots(*g))
      if (pReads.count(w) || pWrites.count(w)) return false;
    for (int32_t r : an::readSlots(*g))
      if (pWrites.count(r)) return false;
    bool badRead = false;
    an::forEachStmtExpr(*g, [&](const Expr& root) {
      an::forEachExpr(root, [&](const Expr& x) {
        int32_t matSlot = -1;
        if ((x.k == Expr::K::LoadFlat || x.k == Expr::K::Index) &&
            !x.args.empty() && x.args[0]) {
          if (x.args[0]->k == Expr::K::Var)
            matSlot = x.args[0]->slot;
          else
            badRead = true;
        } else if (x.k == Expr::K::Call) {
          for (const auto& a : x.args)
            if (a && a->k == Expr::K::Var && a->ty == Ty::Mat &&
                pStoreBufs.count(env2.ofSlot(a->slot)))
              badRead = true;
        }
        if (matSlot >= 0 && pStoreBufs.count(env2.ofSlot(matSlot)))
          badRead = true;
      });
    });
    if (badRead) return false;
    env2.applyShallow(c.f, *g);
  }
  if (j >= blk.kids.size()) return false;

  Stmt* cLoop = blk.kids[j].get();
  NestInfo C = analyzeNest(*cLoop, env2, c.f, &P.ivarVN);
  if (!C.ok || !C.cleanCalls || C.opaqueElemRead) return false;
  if (C.levels.size() != P.levels.size()) return false;
  for (size_t k = 0; k < P.levels.size(); ++k) {
    if (C.loVN[k] != P.loVN[k] || C.hiVN[k] != P.hiVN[k]) return false;
    // Mismatched parallel flags are reconciled by demoting to serial,
    // which is only allowed for Auto/None loops.
    if (C.levels[k]->parallel != P.levels[k]->parallel &&
        (C.levels[k]->parSrc == Stmt::Par::Explicit ||
         P.levels[k]->parSrc == Stmt::Par::Explicit))
      return false;
  }
  // The consumer may read produced buffers only at the stored index, and
  // its own stores must land in distinct, tracked-fresh buffers.
  std::set<int> neededBufs;
  for (const auto& [bv, iv] : C.elemLoads) {
    const StoreRec* r = P.storeFor(bv);
    if (!r) continue;
    if (iv < 0 || iv != r->idxVN) return false;
    neededBufs.insert(bv);
  }
  for (int bv : C.otherElemReadBufs)
    if (pStoreBufs.count(bv)) return false;
  for (const StoreRec& r : C.stores) {
    if (!r.bufKnown || pStoreBufs.count(r.bufVN)) return false;
  }
  if (neededBufs.empty()) return false; // nothing flows: not a consumer
  // Consumer loop variables must not outlive the consumer (their final
  // values vanish with the fused loop).
  for (int32_t iv : C.ivars)
    if (slotReadOutside(c.f, cLoop, iv)) return false;

  // --- rewrite ---------------------------------------------------------
  // 1. Hoist each needed stored value into a fresh scalar before its store.
  std::map<int, int32_t> fuseSlotByBuf; // bufVN -> %fuse slot
  Stmt* inner = P.innerBlock;
  for (const StoreRec& r : P.stores) {
    if (!neededBufs.count(r.bufVN)) continue;
    Ty vt = r.stmt->exprs[1]->ty;
    int32_t vf = c.f.addLocal("%fuse" + std::to_string(c.fuseCounter++), vt);
    for (size_t k = 0; k < inner->kids.size(); ++k) {
      if (inner->kids[k].get() != r.stmt) continue;
      StmtPtr init = assign(vf, std::move(r.stmt->exprs[1]));
      r.stmt->exprs[1] = var(vf, vt);
      inner->kids.insert(inner->kids.begin() + k, std::move(init));
      break;
    }
    fuseSlotByBuf[r.bufVN] = vf;
  }
  // 2. Map consumer reads: any slot bound to a needed buffer reads the
  //    hoisted scalar; consumer loop variables become producer ones.
  std::map<int32_t, int32_t> loadSlots;
  for (size_t s = 0; s < c.f.locals.size(); ++s) {
    if (c.f.locals[s].ty != Ty::Mat) continue;
    int bv = env2.ofSlot(static_cast<int32_t>(s));
    auto it = fuseSlotByBuf.find(bv);
    if (it != fuseSlotByBuf.end()) loadSlots[static_cast<int32_t>(s)] = it->second;
  }
  std::map<int32_t, int32_t> ivarMap;
  for (size_t k = 0; k < C.ivars.size(); ++k) ivarMap[C.ivars[k]] = P.ivars[k];
  FuseRewrite rw{ivarMap, loadSlots, c.f};
  for (auto& kid : C.innerBlock->kids) {
    if (!kid) continue;
    StmtPtr copy = cloneStmt(*kid);
    rewriteStmt(*copy, rw);
    inner->kids.push_back(std::move(copy));
  }
  // 3. Reconcile parallel flags (demote mismatches to serial).
  for (size_t k = 0; k < P.levels.size(); ++k) {
    if (C.levels[k]->parallel != P.levels[k]->parallel) {
      P.levels[k]->parallel = false;
      P.levels[k]->parSrc = Stmt::Par::None;
    }
  }
  // 4. The fused nest takes the consumer's position (after the glue).
  blk.kids[j] = std::move(blk.kids[i]);
  blk.kids.erase(blk.kids.begin() + i);
  ++c.stats.fused;
  return true;
}

// ---------------------------------------------------------------------------
// In-place update: [t = initMatrix(e, d...)] [checkGenBounds...] [nest
// storing every element of t] [A = t]  becomes the nest writing A's
// existing buffer directly, when A provably holds the only live handle to
// a buffer of identical shape. The checkGenBounds guards stay, so the
// rewritten program traps exactly when the original did; full coverage
// (bounds 0..dims with the canonical row-major index) makes overwriting
// equivalent to the fresh zero-filled allocation.

bool tryInplace(Ctx& c, Stmt& blk, size_t i, VN& env) {
  Stmt* alloc = blk.kids[i].get();
  if (alloc->k != Stmt::K::Assign || alloc->exprs.empty() || !alloc->exprs[0])
    return false;
  const Expr& rhs = *alloc->exprs[0];
  if (c.f.locals[alloc->slot].ty != Ty::Mat || !VN::isInitMatrix(rhs))
    return false;
  int32_t t = alloc->slot;

  // Window: only checkGenBounds between the allocation and the nest, and
  // the closing handle copy immediately after the nest.
  size_t jLoop = i + 1;
  for (; jLoop < blk.kids.size(); ++jLoop) {
    Stmt* g = blk.kids[jLoop].get();
    if (!g) continue;
    if (g->k == Stmt::K::For) break;
    if (g->k != Stmt::K::CallStmt || g->exprs.empty() || !g->exprs[0] ||
        g->exprs[0]->k != Expr::K::Call || g->exprs[0]->s != "checkGenBounds" ||
        !callArgsPure(*g->exprs[0]))
      return false;
    for (const auto& a : g->exprs[0]->args)
      if (a && a->ty == Ty::Mat) return false;
  }
  if (jLoop >= blk.kids.size() || jLoop + 1 >= blk.kids.size()) return false;
  Stmt* closing = blk.kids[jLoop + 1].get();
  if (!closing || closing->k != Stmt::K::Assign || closing->exprs.empty() ||
      !closing->exprs[0] || closing->exprs[0]->k != Expr::K::Var ||
      closing->exprs[0]->slot != t)
    return false;
  int32_t A = closing->slot;
  if (A == t || c.f.locals[A].ty != Ty::Mat) return false;

  VN envA = env;
  // A's buffer facts come from the pre-allocation state.
  const VN::Buf* aBufPre = envA.bufOfSlot(A);
  int aBufVN = envA.ofSlot(A);
  VN::Buf aBuf;
  bool aKnown = aBufPre != nullptr;
  if (aBufPre) aBuf = *aBufPre;

  envA.applyShallow(c.f, *alloc);
  const VN::Buf* tBufP = envA.bufOfSlot(t);
  if (!tBufP) return false;
  std::vector<int> dimVNs = tBufP->dims;
  int tElem = tBufP->elem;
  int tBufVN = envA.ofSlot(t);

  NestInfo N = analyzeNest(*blk.kids[jLoop], envA, c.f, nullptr);
  OPTDBG("inplace t=%s A=%s nest ok=%d levels=%zu/%zu\n",
         c.f.locals[t].name.c_str(), c.f.locals[A].name.c_str(), N.ok,
         N.levels.size(), dimVNs.size());
  if (!N.ok || !N.cleanCalls || N.opaqueElemRead) return false;
  if (N.levels.size() != dimVNs.size()) return false;
  const StoreRec* tStore = nullptr;
  for (const StoreRec& r : N.stores) {
    if (r.slot == t) {
      tStore = &r;
    } else if (!r.bufKnown || r.bufVN == tBufVN) {
      return false; // untracked side store could touch A's buffer
    }
  }
  if (!tStore || tStore->bufVN != tBufVN) {
    OPTDBG("inplace: store missing or wrong buf (tStore=%p)\n", (void*)tStore);
    return false;
  }
  // Full coverage with the canonical row-major index.
  for (size_t k = 0; k < N.levels.size(); ++k) {
    if (N.loVN[k] != envA.constIVN(0)) {
      OPTDBG("inplace: lo[%zu] not 0 (%d)\n", k, N.loVN[k]);
      return false;
    }
    if (N.hiVN[k] != dimVNs[k]) {
      OPTDBG("inplace: hi[%zu]=%d != dim %d\n", k, N.hiVN[k], dimVNs[k]);
      return false;
    }
  }
  int canonical = N.ivarVN[0];
  for (size_t k = 1; k < N.levels.size(); ++k)
    canonical = envA.addVN(envA.mulVN(canonical, dimVNs[k]), N.ivarVN[k]);
  if (tStore->idxVN != canonical) {
    OPTDBG("inplace: idx %d != canonical %d\n", tStore->idxVN, canonical);
    return false;
  }
  // Nothing may read t's fresh zero fill, and the temporary must die at
  // the closing copy.
  for (const auto& [bv, iv] : N.elemLoads) {
    (void)iv;
    if (bv == tBufVN) return false;
  }
  for (int bv : N.otherElemReadBufs)
    if (bv == tBufVN) return false;
  if (c.live->isLiveAfter(closing, t)) {
    OPTDBG("inplace: temp live after closing copy\n");
    return false;
  }

  // Target shape must match the allocation exactly.
  if (!aKnown || aBuf.elem != tElem || aBuf.dims != dimVNs) {
    OPTDBG("inplace: target shape unknown/mismatch (known=%d)\n", aKnown);
    return false;
  }
  // Reading A's old contents while overwriting them would be wrong; with
  // A unique (below) only A-bound slots can reach that buffer.
  for (const auto& [bv, iv] : N.elemLoads) {
    (void)iv;
    if (bv == aBufVN) return false;
  }
  for (int bv : N.otherElemReadBufs)
    if (bv == aBufVN) return false;

  // Everything structural holds: only aliasing can stop us now.
  if (!c.uniq->isUniqueBefore(alloc, A)) {
    ++c.stats.aliasBlocked;
    return false;
  }

  // --- rewrite: nest writes A; allocation and closing copy disappear.
  blk.kids.erase(blk.kids.begin() + jLoop + 1);
  std::function<void(ExprPtr&)> renameVar = [&](ExprPtr& e) {
    if (!e) return;
    if (e->k == Expr::K::Var && e->slot == t && e->ty == Ty::Mat) e->slot = A;
    for (ExprPtr& a : e->args) renameVar(a);
    for (IndexDim& d : e->dims) {
      renameVar(d.a);
      renameVar(d.b);
    }
  };
  an::forEachStmt(*blk.kids[jLoop], [&](Stmt& s) {
    if (s.k == Stmt::K::StoreFlat && s.slot == t) s.slot = A;
    for (ExprPtr& e : s.exprs) renameVar(e);
  });
  blk.kids.erase(blk.kids.begin() + i);
  ++c.stats.inplaceConverted;
  return true;
}

// ---------------------------------------------------------------------------
// Write-only temporary elimination: a matrix whose only uses in the whole
// function are one pure allocation and one full-coverage canonical store
// is never observed; the store goes, the allocation goes, the bounds
// guards stay. (The nest survives — post-fusion it still computes the
// consumer's work; a nest left empty is pruned separately.)

bool tryElimWriteOnly(Ctx& c, Stmt& blk, size_t i, VN& env) {
  Stmt* alloc = blk.kids[i].get();
  if (alloc->k != Stmt::K::Assign || alloc->exprs.empty() || !alloc->exprs[0])
    return false;
  const Expr& rhs = *alloc->exprs[0];
  if (c.f.locals[alloc->slot].ty != Ty::Mat || !VN::isInitMatrix(rhs) ||
      !callArgsPure(rhs))
    return false;
  int32_t t = alloc->slot;
  if (static_cast<size_t>(t) < c.f.numParams) return false;
  if (c.uniq->observed.get(t)) return false;

  // Whole-function census: exactly this definition, exactly one store,
  // zero other appearances.
  int defs = 0, storeCount = 0;
  bool otherUse = false;
  Stmt* theStore = nullptr;
  an::forEachStmt(*c.f.body, [&](const Stmt& s) {
    an::forEachStmtExpr(s, [&](const Expr& root) {
      if (an::exprReadsSlot(root, t)) otherUse = true;
    });
    switch (s.k) {
      case Stmt::K::Assign:
        if (s.slot == t) ++defs;
        break;
      case Stmt::K::StoreFlat:
        if (s.slot == t) {
          ++storeCount;
          theStore = const_cast<Stmt*>(&s);
        }
        break;
      case Stmt::K::IndexStore:
        if (s.slot == t) otherUse = true;
        break;
      case Stmt::K::CallAssign:
        for (int32_t d : s.dsts)
          if (d == t) otherUse = true;
        break;
      default:
        break;
    }
  });
  // readSlots counts the store's own handle read; exprReadsSlot above does
  // not see StoreFlat's implicit target, so `otherUse` is exactly "reads
  // besides the store".
  if (otherUse || defs != 1 || storeCount != 1 || !theStore) return false;

  // Find the nest containing the store, advancing the environment over
  // whatever sits between (the census already proved nothing touches t).
  VN envA = env;
  envA.applyShallow(c.f, *alloc);
  int tBufVN = envA.ofSlot(t);
  const VN::Buf* tBuf = envA.buf(tBufVN);
  if (!tBuf) return false;
  std::vector<int> dimVNs = tBuf->dims;

  size_t jLoop = blk.kids.size();
  for (size_t j = i + 1; j < blk.kids.size(); ++j) {
    Stmt* g = blk.kids[j].get();
    if (!g) continue;
    bool containsStore = false;
    an::forEachStmt(*g, [&](const Stmt& s) {
      if (&s == theStore) containsStore = true;
    });
    if (containsStore) {
      if (g->k != Stmt::K::For) return false;
      jLoop = j;
      break;
    }
    switch (g->k) {
      case Stmt::K::Assign:
      case Stmt::K::CallAssign:
        envA.applyShallow(c.f, *g);
        break;
      case Stmt::K::CallStmt:
      case Stmt::K::StoreFlat:
      case Stmt::K::IndexStore:
        break; // no slot rebinding
      case Stmt::K::For:
      case Stmt::K::While:
      case Stmt::K::If:
      case Stmt::K::Block:
        invalidateWritesIn(envA, *g);
        break;
      default:
        return false; // Ret/Break/Continue end the window
    }
  }
  if (jLoop >= blk.kids.size()) return false;

  NestInfo N = analyzeNest(*blk.kids[jLoop], envA, c.f, nullptr);
  if (!N.ok || N.levels.size() != dimVNs.size()) return false;
  const StoreRec* rec = nullptr;
  for (const StoreRec& r : N.stores)
    if (r.stmt == theStore) rec = &r;
  if (!rec || rec->bufVN != tBufVN) return false;
  // Deleting the store may not delete a trap: full coverage with the
  // canonical index plus the surviving checkGenBounds guards mean the
  // store was always in bounds.
  for (size_t k = 0; k < N.levels.size(); ++k) {
    if (N.loVN[k] != envA.constIVN(0)) return false;
    if (N.hiVN[k] != dimVNs[k]) return false;
  }
  int canonical = N.ivarVN[0];
  for (size_t k = 1; k < N.levels.size(); ++k)
    canonical = envA.addVN(envA.mulVN(canonical, dimVNs[k]), N.ivarVN[k]);
  if (rec->idxVN != canonical) return false;
  // The stored value's effects vanish with it.
  if (!theStore->exprs[0] || !exprCallsPure(*theStore->exprs[0])) return false;
  if (!theStore->exprs[1] || !exprCallsPure(*theStore->exprs[1])) return false;

  for (size_t k = 0; k < N.innerBlock->kids.size(); ++k) {
    if (N.innerBlock->kids[k].get() == theStore) {
      N.innerBlock->kids.erase(N.innerBlock->kids.begin() + k);
      break;
    }
  }
  blk.kids.erase(blk.kids.begin() + i);
  ++c.stats.tempsEliminated;
  return true;
}

// ---------------------------------------------------------------------------
// Dead handle assignments: a Mat slot assigned and never read afterwards.
// Deleting `A = y` keeps y's buffer alive longer through A's stale handle,
// which only refCount()/rcLive() could notice — hence the observed-set
// guard (closed over aliasing, so a shared buffer anywhere near an
// observation blocks the deletion).

bool deletableRhs(const Expr& e) {
  if (e.k == Expr::K::Var) return true;
  if (e.k == Expr::K::Call && (e.s == "initMatrix" || e.s == "cloneMatrix"))
    return callArgsPure(e);
  return false;
}

bool eraseDeadHandleAssigns(Ctx& c, Stmt& blk) {
  bool changed = false;
  for (size_t i = 0; i < blk.kids.size();) {
    Stmt* s = blk.kids[i].get();
    if (!s) {
      ++i;
      continue;
    }
    for (StmtPtr& k : s->kids)
      if (k && k->k == Stmt::K::Block) changed |= eraseDeadHandleAssigns(c, *k);
    if (s->k == Stmt::K::Assign && !s->exprs.empty() && s->exprs[0] &&
        c.f.locals[s->slot].ty == Ty::Mat && deletableRhs(*s->exprs[0]) &&
        !c.live->isLiveAfter(s, s->slot) && !c.uniq->observed.get(s->slot) &&
        !(s->exprs[0]->k == Expr::K::Var &&
          c.uniq->observed.get(s->exprs[0]->slot))) {
      blk.kids.erase(blk.kids.begin() + i);
      changed = true;
      continue;
    }
    ++i;
  }
  return changed;
}

/// Post-order removal of loops whose bodies ended up empty (the loop
/// variable must be local to the loop; `while` is never pruned — an
/// infinite loop is behavior).
bool pruneEmptyLoops(Ctx& c, Stmt& blk) {
  bool changed = false;
  for (size_t i = 0; i < blk.kids.size();) {
    Stmt* s = blk.kids[i].get();
    if (!s) {
      ++i;
      continue;
    }
    for (StmtPtr& k : s->kids)
      if (k && k->k == Stmt::K::Block) changed |= pruneEmptyLoops(c, *k);
    bool erase = false;
    if (s->k == Stmt::K::Block && s->kids.empty()) erase = true;
    if (s->k == Stmt::K::For && s->kids.size() == 1 && s->kids[0] &&
        s->kids[0]->k == Stmt::K::Block && s->kids[0]->kids.empty()) {
      bool pureBounds = true;
      for (const ExprPtr& e : s->exprs) {
        if (!e) continue;
        an::forEachExpr(*e, [&](const Expr& x) {
          if (x.k == Expr::K::Call) pureBounds = false;
        });
      }
      if (pureBounds && !slotReadOutside(c.f, s, s->slot)) erase = true;
    }
    if (erase) {
      blk.kids.erase(blk.kids.begin() + i);
      changed = true;
      continue;
    }
    ++i;
  }
  return changed;
}

// ---------------------------------------------------------------------------
// Driver: one scan finds at most one rewrite, then everything (liveness,
// uniqueness, value numbers) is recomputed — rewrites invalidate statement
// pointers, and stale facts must never drive a second rewrite.

bool scanBlock(Ctx& c, Stmt& blk, VN& env) {
  for (size_t i = 0; i < blk.kids.size(); ++i) {
    Stmt* s = blk.kids[i].get();
    if (!s) continue;
    if (c.opts.fuse && s->k == Stmt::K::For && tryFuse(c, blk, i, env))
      return true;
    if (s->k == Stmt::K::Assign) {
      if (c.opts.inplace && tryInplace(c, blk, i, env)) return true;
      if (c.opts.elimTemp && tryElimWriteOnly(c, blk, i, env)) return true;
    }
    switch (s->k) {
      case Stmt::K::For:
      case Stmt::K::While: {
        VN inner = loopBodyEnv(c.f, *s, env);
        if (s->kids[0] && scanBlock(c, *s->kids[0], inner)) return true;
        invalidateWritesIn(env, *s);
        break;
      }
      case Stmt::K::If: {
        for (const StmtPtr& k : s->kids) {
          if (!k) continue;
          VN branch = env;
          if (scanBlock(c, *k, branch)) return true;
        }
        invalidateWritesIn(env, *s);
        break;
      }
      case Stmt::K::Block:
        if (scanBlock(c, *s, env)) return true;
        break;
      default:
        env.applyShallow(c.f, *s);
        break;
    }
  }
  return false;
}

void optimizeFunction(Function& f, const an::SummaryMap& sums,
                      const OptOptions& opts, OptStats& stats) {
  Ctx c{f, sums, opts, stats};
  normalizeBodies(*f.body);
  // Each round performs at most one structural rewrite (or a batch of
  // independent deletions) against freshly computed facts. Rewrites
  // strictly shrink the program or the number of fusable seams, so the
  // guard is never the stopping reason in practice.
  for (int guard = 0; guard < 256; ++guard) {
    an::Liveness live = an::computeLiveness(f);
    an::Uniqueness uniq = an::analyzeUniqueness(f, sums, live);
    c.live = &live;
    c.uniq = &uniq;
    bool rewrote = false;
    if (opts.fuse || opts.inplace || opts.elimTemp) {
      VN env(f.locals.size());
      rewrote = scanBlock(c, *f.body, env);
    }
    if (!rewrote && opts.elimTemp) {
      rewrote |= eraseDeadHandleAssigns(c, *f.body);
      rewrote |= pruneEmptyLoops(c, *f.body);
    }
    if (!rewrote) break;
  }
}

// ---------------------------------------------------------------------------
// -O1 autopar: promote serial For loops whose carried-dependence set is
// provably empty (the inverse of parsafe's demotion). Matrix accesses are
// judged by the affine dependence analysis; scalars by a definite-
// assignment walk — every scalar the body writes must be written before
// it is read in each iteration (both backends privatize such slots:
// cemit shadows them, the interp copies the frame per worker) and must
// not be read outside the loop (the privatized final value is dropped).

/// True when every read of a slot in `scalars` inside `body` is dominated
/// by a write earlier in the same iteration.
bool scalarsPrivatizable(const Stmt& body,
                         const std::set<int32_t>& scalars) {
  bool ok = true;
  auto checkExpr = [&](const Expr& e, const std::set<int32_t>& defs) {
    an::forEachExpr(e, [&](const Expr& x) {
      if (x.k == Expr::K::Var && scalars.count(x.slot) && !defs.count(x.slot))
        ok = false;
    });
  };
  auto checkDims = [&](const std::vector<IndexDim>& dims,
                       const std::set<int32_t>& defs) {
    for (const auto& d : dims) {
      if (d.a) checkExpr(*d.a, defs);
      if (d.b) checkExpr(*d.b, defs);
    }
  };
  // Returns the definitely-written set after the statement.
  std::function<std::set<int32_t>(const Stmt&, std::set<int32_t>)> walk =
      [&](const Stmt& s, std::set<int32_t> defs) -> std::set<int32_t> {
    switch (s.k) {
      case Stmt::K::Block:
        for (const auto& k : s.kids)
          if (k) defs = walk(*k, std::move(defs));
        return defs;
      case Stmt::K::Assign:
        checkExpr(*s.exprs[0], defs);
        defs.insert(s.slot);
        return defs;
      case Stmt::K::StoreFlat:
        checkExpr(*s.exprs[0], defs);
        checkExpr(*s.exprs[1], defs);
        return defs;
      case Stmt::K::IndexStore:
        checkDims(s.dims, defs);
        for (const auto& e : s.exprs)
          if (e) checkExpr(*e, defs);
        return defs;
      case Stmt::K::For: {
        checkExpr(*s.exprs[0], defs);
        checkExpr(*s.exprs[1], defs);
        std::set<int32_t> inner = defs;
        inner.insert(s.slot);
        walk(*s.kids[0], std::move(inner));  // may run zero times
        return defs;
      }
      case Stmt::K::While:
        checkExpr(*s.exprs[0], defs);
        walk(*s.kids[0], defs);
        return defs;
      case Stmt::K::If: {
        checkExpr(*s.exprs[0], defs);
        std::set<int32_t> thenD =
            s.kids[0] ? walk(*s.kids[0], defs) : defs;
        std::set<int32_t> elseD =
            s.kids.size() > 1 && s.kids[1] ? walk(*s.kids[1], defs) : defs;
        std::set<int32_t> meet;
        for (int32_t v : thenD)
          if (elseD.count(v)) meet.insert(v);
        return meet;
      }
      case Stmt::K::CallAssign:
        for (const auto& e : s.exprs)
          if (e) checkExpr(*e, defs);
        for (int32_t d : s.dsts) defs.insert(d);
        return defs;
      case Stmt::K::CallStmt:
      case Stmt::K::Ret:
        for (const auto& e : s.exprs)
          if (e) checkExpr(*e, defs);
        return defs;
      case Stmt::K::Break:
      case Stmt::K::Continue:
        ok = false;  // escape/skip paths are not modeled; stay serial
        return defs;
    }
    return defs;
  };
  walk(body, {});
  return ok;
}

/// True when any statement outside the `loop` subtree reads one of
/// `slots` (the body-written scalars plus the loop variable); their
/// post-loop values are dropped by the parallel backends.
bool readOutsideLoop(const Function& f, const Stmt& loop,
                     const std::set<int32_t>& slots) {
  bool found = false;
  auto checkExpr = [&](const Expr& e) {
    an::forEachExpr(e, [&](const Expr& x) {
      if (x.k == Expr::K::Var && slots.count(x.slot)) found = true;
    });
  };
  std::function<void(const Stmt&)> rec = [&](const Stmt& s) {
    if (&s == &loop) return;
    for (const auto& e : s.exprs)
      if (e) checkExpr(*e);
    for (const auto& d : s.dims) {
      if (d.a) checkExpr(*d.a);
      if (d.b) checkExpr(*d.b);
    }
    for (const auto& k : s.kids)
      if (k) rec(*k);
  };
  if (f.body) rec(*f.body);
  return found;
}

bool tryPromote(const an::Depend& dep, Function& f, Stmt& loop,
                OptStats& stats) {
  if (loop.vecWidth > 1) {
    ++stats.autoparBlocked;
    OPTDBG("autopar: '%s' blocked (vectorized)\n", loop.loopName.c_str());
    return false;
  }
  an::NestDeps nd = dep.analyzeNest(f, loop);
  if (nd.hasIO || nd.hasEscape) {
    ++stats.autoparBlocked;
    OPTDBG("autopar: '%s' blocked (io/escape)\n", loop.loopName.c_str());
    return false;
  }
  for (const auto& v : nd.vectors)
    if (v.possiblyCarriedBy(&loop)) {
      ++stats.autoparBlocked;
      OPTDBG("autopar: '%s' blocked (dep %s on %s)\n", loop.loopName.c_str(),
             v.render().c_str(), v.src.mat.c_str());
      return false;
    }

  std::set<int32_t> scalarWr;
  an::forEachStmt(*loop.kids[0], [&](const Stmt& s) {
    for (int32_t w : an::writtenSlots(s))
      if (w >= 0 && static_cast<size_t>(w) < f.locals.size() &&
          f.locals[w].ty != Ty::Mat)
        scalarWr.insert(w);
  });
  if (!scalarsPrivatizable(*loop.kids[0], scalarWr)) {
    ++stats.autoparBlocked;
    OPTDBG("autopar: '%s' blocked (scalar flow)\n", loop.loopName.c_str());
    return false;
  }
  std::set<int32_t> escaping = scalarWr;
  escaping.insert(loop.slot);
  if (readOutsideLoop(f, loop, escaping)) {
    ++stats.autoparBlocked;
    OPTDBG("autopar: '%s' blocked (value escapes)\n", loop.loopName.c_str());
    return false;
  }

  loop.parallel = true;
  loop.parSrc = Stmt::Par::Proven;
  ++stats.autoparPromoted;
  OPTDBG("autopar: promoted '%s'\n", loop.loopName.c_str());
  return true;
}

void runAutopar(Module& m, OptStats& stats) {
  an::Depend dep(m);
  for (auto& f : m.functions) {
    if (!f || !f->body) continue;
    // Outermost-first: a promoted loop's subtree is left alone (nested
    // parallelism would oversubscribe the pool; the interp runs nested
    // parallel loops serially anyway).
    std::function<void(Stmt&)> rec = [&](Stmt& s) {
      if (s.k == Stmt::K::For) {
        if (s.parallel || tryPromote(dep, *f, s, stats)) return;
        for (auto& k : s.kids)
          if (k) rec(*k);
        return;
      }
      for (auto& k : s.kids)
        if (k) rec(*k);
    };
    rec(*f->body);
  }
}

} // namespace

OptStats optimizeModule(Module& m, const OptOptions& opts) {
  // Counters register on first call even when every pass is disabled, so
  // analyze-only runs report the full opt.* section.
  static const metrics::Counter cFused = metrics::counter("opt.fusion.fused");
  static const metrics::Counter cTemps =
      metrics::counter("opt.temps.eliminated");
  static const metrics::Counter cInplace =
      metrics::counter("opt.inplace.converted");
  static const metrics::Counter cBlocked =
      metrics::counter("opt.alias.blocked");
  static const metrics::Counter cPromoted =
      metrics::counter("opt.autopar.promoted");
  static const metrics::Counter cParBlocked =
      metrics::counter("opt.autopar.blocked");

  OptStats stats;
  if (!opts.any()) return stats;

  if (opts.fuse || opts.elimTemp || opts.inplace) {
    an::SummaryMap sums = an::summarizeModule(m);
    for (auto& f : m.functions)
      if (f && f->body) optimizeFunction(*f, sums, opts, stats);
  }
  // Autopar runs after the structural rewrites so fused/in-place nests are
  // judged in their final form.
  if (opts.autopar) runAutopar(m, stats);

  cFused.add(stats.fused);
  cTemps.add(stats.tempsEliminated);
  cInplace.add(stats.inplaceConverted);
  cBlocked.add(stats.aliasBlocked);
  cPromoted.add(stats.autoparPromoted);
  cParBlocked.add(stats.autoparBlocked);
  return stats;
}

} // namespace mmx::ir
