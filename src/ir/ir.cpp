#include "ir/ir.hpp"

#include <sstream>

namespace mmx::ir {

const char* tyName(Ty t) {
  switch (t) {
    case Ty::Void: return "void";
    case Ty::I32: return "int";
    case Ty::F32: return "float";
    case Ty::Bool: return "bool";
    case Ty::Mat: return "matrix";
    case Ty::Str: return "str";
  }
  return "?";
}

const char* arithName(ArithOp op) {
  switch (op) {
    case ArithOp::Add: return "+";
    case ArithOp::Sub: return "-";
    case ArithOp::Mul: return "*";
    case ArithOp::EwMul: return ".*";
    case ArithOp::Div: return "/";
    case ArithOp::Mod: return "%";
    case ArithOp::Min: return "min";
    case ArithOp::Max: return "max";
  }
  return "?";
}

const char* cmpName(CmpKind op) {
  switch (op) {
    case CmpKind::Lt: return "<";
    case CmpKind::Le: return "<=";
    case CmpKind::Gt: return ">";
    case CmpKind::Ge: return ">=";
    case CmpKind::Eq: return "==";
    case CmpKind::Ne: return "!=";
  }
  return "?";
}

namespace {
ExprPtr mk(Expr::K k, Ty ty) {
  auto e = std::make_unique<Expr>();
  e->k = k;
  e->ty = ty;
  return e;
}
} // namespace

ExprPtr constI(int32_t v) {
  auto e = mk(Expr::K::ConstI, Ty::I32);
  e->i = v;
  return e;
}
ExprPtr constF(float v) {
  auto e = mk(Expr::K::ConstF, Ty::F32);
  e->f = v;
  return e;
}
ExprPtr constB(bool v) {
  auto e = mk(Expr::K::ConstB, Ty::Bool);
  e->i = v ? 1 : 0;
  return e;
}
ExprPtr constS(std::string v) {
  auto e = mk(Expr::K::ConstS, Ty::Str);
  e->s = std::move(v);
  return e;
}
ExprPtr var(int32_t slot, Ty ty) {
  auto e = mk(Expr::K::Var, ty);
  e->slot = slot;
  return e;
}
ExprPtr arith(ArithOp op, ExprPtr a, ExprPtr b, Ty ty) {
  auto e = mk(Expr::K::Arith, ty);
  e->aop = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}
ExprPtr cmp(CmpKind op, ExprPtr a, ExprPtr b, Ty ty) {
  auto e = mk(Expr::K::Cmp, ty);
  e->cop = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}
ExprPtr logic(LogicOp op, ExprPtr a, ExprPtr b) {
  auto e = mk(Expr::K::Logic, Ty::Bool);
  e->lop = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}
ExprPtr notE(ExprPtr a) {
  auto e = mk(Expr::K::Not, Ty::Bool);
  e->args.push_back(std::move(a));
  return e;
}
ExprPtr negE(ExprPtr a, Ty ty) {
  auto e = mk(Expr::K::Neg, ty);
  e->args.push_back(std::move(a));
  return e;
}
ExprPtr cast(Ty to, ExprPtr a) {
  auto e = mk(Expr::K::Cast, to);
  e->args.push_back(std::move(a));
  return e;
}
ExprPtr call(std::string callee, std::vector<ExprPtr> args, Ty ty) {
  auto e = mk(Expr::K::Call, ty);
  e->s = std::move(callee);
  e->args = std::move(args);
  return e;
}
ExprPtr loadFlat(ExprPtr mat, ExprPtr flat, Ty elemTy) {
  auto e = mk(Expr::K::LoadFlat, elemTy);
  e->args.push_back(std::move(mat));
  e->args.push_back(std::move(flat));
  return e;
}
ExprPtr dimSize(ExprPtr mat, ExprPtr d) {
  auto e = mk(Expr::K::DimSize, Ty::I32);
  e->args.push_back(std::move(mat));
  e->args.push_back(std::move(d));
  return e;
}

static IndexDim cloneDim(const IndexDim& d) {
  IndexDim o;
  o.kind = d.kind;
  if (d.a) o.a = cloneExpr(*d.a);
  if (d.b) o.b = cloneExpr(*d.b);
  return o;
}

ExprPtr cloneExpr(const Expr& e) {
  auto n = std::make_unique<Expr>();
  n->k = e.k;
  n->ty = e.ty;
  n->slot = e.slot;
  n->i = e.i;
  n->f = e.f;
  n->s = e.s;
  n->aop = e.aop;
  n->cop = e.cop;
  n->lop = e.lop;
  for (const auto& a : e.args) n->args.push_back(cloneExpr(*a));
  for (const auto& d : e.dims) n->dims.push_back(cloneDim(d));
  return n;
}

namespace {
StmtPtr mkS(Stmt::K k) {
  auto s = std::make_unique<Stmt>();
  s->k = k;
  return s;
}
} // namespace

StmtPtr block(std::vector<StmtPtr> kids) {
  auto s = mkS(Stmt::K::Block);
  s->kids = std::move(kids);
  return s;
}
StmtPtr assign(int32_t slot, ExprPtr e) {
  auto s = mkS(Stmt::K::Assign);
  s->slot = slot;
  s->exprs.push_back(std::move(e));
  return s;
}
StmtPtr storeFlat(int32_t matSlot, ExprPtr flat, ExprPtr value) {
  auto s = mkS(Stmt::K::StoreFlat);
  s->slot = matSlot;
  s->exprs.push_back(std::move(flat));
  s->exprs.push_back(std::move(value));
  return s;
}
StmtPtr forLoop(int32_t slot, ExprPtr lo, ExprPtr hi, StmtPtr body,
                std::string name) {
  auto s = mkS(Stmt::K::For);
  s->slot = slot;
  s->exprs.push_back(std::move(lo));
  s->exprs.push_back(std::move(hi));
  s->kids.push_back(std::move(body));
  s->loopName = std::move(name);
  return s;
}
StmtPtr whileLoop(ExprPtr cond, StmtPtr body) {
  auto s = mkS(Stmt::K::While);
  s->exprs.push_back(std::move(cond));
  s->kids.push_back(std::move(body));
  return s;
}
StmtPtr ifStmt(ExprPtr cond, StmtPtr thenS, StmtPtr elseS) {
  auto s = mkS(Stmt::K::If);
  s->exprs.push_back(std::move(cond));
  s->kids.push_back(std::move(thenS));
  s->kids.push_back(std::move(elseS)); // may be null
  return s;
}
StmtPtr ret(std::vector<ExprPtr> vals) {
  auto s = mkS(Stmt::K::Ret);
  s->exprs = std::move(vals);
  return s;
}
StmtPtr callStmt(ExprPtr callExpr) {
  auto s = mkS(Stmt::K::CallStmt);
  s->exprs.push_back(std::move(callExpr));
  return s;
}
StmtPtr callAssign(std::vector<int32_t> dsts, std::string callee,
                   std::vector<ExprPtr> args) {
  auto s = mkS(Stmt::K::CallAssign);
  s->dsts = std::move(dsts);
  s->callee = std::move(callee);
  s->exprs = std::move(args);
  return s;
}

StmtPtr cloneStmt(const Stmt& s) {
  auto n = std::make_unique<Stmt>();
  n->k = s.k;
  n->slot = s.slot;
  for (const auto& e : s.exprs)
    n->exprs.push_back(e ? cloneExpr(*e) : nullptr);
  for (const auto& c : s.kids) n->kids.push_back(c ? cloneStmt(*c) : nullptr);
  for (const auto& d : s.dims) n->dims.push_back(cloneDim(d));
  n->dsts = s.dsts;
  n->callee = s.callee;
  n->range = s.range;
  n->parallel = s.parallel;
  n->parSrc = s.parSrc;
  n->vecWidth = s.vecWidth;
  n->loopName = s.loopName;
  return n;
}

Function* Module::find(const std::string& name) const {
  for (const auto& f : functions)
    if (f->name == name) return f.get();
  return nullptr;
}

Function* Module::add(std::string name) {
  functions.push_back(std::make_unique<Function>());
  functions.back()->name = std::move(name);
  return functions.back().get();
}

// ---------------------------------------------------------------------------
// Pseudo-C dump

namespace {

class Dumper {
public:
  explicit Dumper(const Function& f) : f_(f) {}

  std::string run() {
    out_ << tySig() << " {\n";
    indent_ = 1;
    stmt(*f_.body);
    out_ << "}\n";
    return out_.str();
  }

private:
  std::string tySig() {
    std::ostringstream s;
    if (f_.rets.empty())
      s << "void";
    else {
      for (size_t i = 0; i < f_.rets.size(); ++i)
        s << (i ? ", " : "") << tyName(f_.rets[i]);
    }
    s << ' ' << f_.name << '(';
    for (size_t i = 0; i < f_.numParams; ++i)
      s << (i ? ", " : "") << tyName(f_.locals[i].ty) << ' '
        << f_.locals[i].name;
    s << ')';
    return s.str();
  }

  void line() {
    for (int i = 0; i < indent_; ++i) out_ << "  ";
  }

  std::string lv(int32_t slot) { return f_.locals[slot].name; }

  std::string expr(const Expr& e) {
    std::ostringstream s;
    switch (e.k) {
      case Expr::K::ConstI: s << e.i; break;
      case Expr::K::ConstF: s << e.f << 'f'; break;
      case Expr::K::ConstB: s << (e.i ? "true" : "false"); break;
      case Expr::K::ConstS: s << '"' << e.s << '"'; break;
      case Expr::K::Var: s << lv(e.slot); break;
      case Expr::K::Arith:
        s << '(' << expr(*e.args[0]) << ' ' << arithName(e.aop) << ' '
          << expr(*e.args[1]) << ')';
        break;
      case Expr::K::Cmp:
        s << '(' << expr(*e.args[0]) << ' ' << cmpName(e.cop) << ' '
          << expr(*e.args[1]) << ')';
        break;
      case Expr::K::Logic:
        s << '(' << expr(*e.args[0]) << (e.lop == LogicOp::And ? " && " : " || ")
          << expr(*e.args[1]) << ')';
        break;
      case Expr::K::Not: s << "!(" << expr(*e.args[0]) << ')'; break;
      case Expr::K::Neg: s << "-(" << expr(*e.args[0]) << ')'; break;
      case Expr::K::Cast:
        s << '(' << tyName(e.ty) << ")(" << expr(*e.args[0]) << ')';
        break;
      case Expr::K::Call: {
        s << e.s << '(';
        for (size_t i = 0; i < e.args.size(); ++i)
          s << (i ? ", " : "") << expr(*e.args[i]);
        s << ')';
        break;
      }
      case Expr::K::Index: {
        s << expr(*e.args[0]) << '[';
        for (size_t i = 0; i < e.dims.size(); ++i) {
          if (i) s << ", ";
          s << dim(e.dims[i]);
        }
        s << ']';
        break;
      }
      case Expr::K::RangeLit:
        s << '(' << expr(*e.args[0]) << " :: " << expr(*e.args[1]) << ')';
        break;
      case Expr::K::DimSize:
        s << "dimSize(" << expr(*e.args[0]) << ", " << expr(*e.args[1]) << ')';
        break;
      case Expr::K::LoadFlat:
        s << expr(*e.args[0]) << ".data[" << expr(*e.args[1]) << ']';
        break;
    }
    return s.str();
  }

  std::string dim(const IndexDim& d) {
    switch (d.kind) {
      case IndexDim::Kind::Scalar: return expr(*d.a);
      case IndexDim::Kind::Range: return expr(*d.a) + " : " + expr(*d.b);
      case IndexDim::Kind::All: return ":";
      case IndexDim::Kind::Mask: return "mask(" + expr(*d.a) + ")";
    }
    return "?";
  }

  void stmt(const Stmt& s) {
    switch (s.k) {
      case Stmt::K::Block:
        for (const auto& k : s.kids)
          if (k) stmt(*k);
        break;
      case Stmt::K::Assign:
        line();
        out_ << lv(s.slot) << " = " << expr(*s.exprs[0]) << ";\n";
        break;
      case Stmt::K::IndexStore: {
        line();
        out_ << lv(s.slot) << '[';
        for (size_t i = 0; i < s.dims.size(); ++i) {
          if (i) out_ << ", ";
          out_ << dim(s.dims[i]);
        }
        out_ << "] = " << expr(*s.exprs[0]) << ";\n";
        break;
      }
      case Stmt::K::StoreFlat:
        line();
        out_ << lv(s.slot) << ".data[" << expr(*s.exprs[0])
             << "] = " << expr(*s.exprs[1]) << ";\n";
        break;
      case Stmt::K::For: {
        line();
        if (s.parallel) out_ << "#pragma parallel\n", line();
        if (s.vecWidth > 1) out_ << "#pragma vectorize " << s.vecWidth << "\n",
            line();
        out_ << "for (" << lv(s.slot) << " = " << expr(*s.exprs[0]) << "; "
             << lv(s.slot) << " < " << expr(*s.exprs[1]) << "; " << lv(s.slot)
             << "++) {\n";
        ++indent_;
        stmt(*s.kids[0]);
        --indent_;
        line();
        out_ << "}\n";
        break;
      }
      case Stmt::K::While:
        line();
        out_ << "while (" << expr(*s.exprs[0]) << ") {\n";
        ++indent_;
        stmt(*s.kids[0]);
        --indent_;
        line();
        out_ << "}\n";
        break;
      case Stmt::K::If:
        line();
        out_ << "if (" << expr(*s.exprs[0]) << ") {\n";
        ++indent_;
        stmt(*s.kids[0]);
        --indent_;
        line();
        out_ << "}";
        if (s.kids.size() > 1 && s.kids[1]) {
          out_ << " else {\n";
          ++indent_;
          stmt(*s.kids[1]);
          --indent_;
          line();
          out_ << "}";
        }
        out_ << "\n";
        break;
      case Stmt::K::Ret: {
        line();
        out_ << "return";
        for (size_t i = 0; i < s.exprs.size(); ++i)
          out_ << (i ? ", " : " ") << expr(*s.exprs[i]);
        out_ << ";\n";
        break;
      }
      case Stmt::K::CallStmt:
        line();
        out_ << expr(*s.exprs[0]) << ";\n";
        break;
      case Stmt::K::CallAssign: {
        line();
        if (!s.dsts.empty()) {
          out_ << '(';
          for (size_t i = 0; i < s.dsts.size(); ++i)
            out_ << (i ? ", " : "") << lv(s.dsts[i]);
          out_ << ") = ";
        }
        out_ << s.callee << '(';
        for (size_t i = 0; i < s.exprs.size(); ++i)
          out_ << (i ? ", " : "") << expr(*s.exprs[i]);
        out_ << ");\n";
        break;
      }
      case Stmt::K::Break:
        line();
        out_ << "break;\n";
        break;
      case Stmt::K::Continue:
        line();
        out_ << "continue;\n";
        break;
    }
  }

  const Function& f_;
  std::ostringstream out_;
  int indent_ = 0;
};

} // namespace

std::string dump(const Function& f) { return Dumper(f).run(); }

std::string dump(const Module& m) {
  std::string out;
  for (const auto& f : m.functions) {
    out += dump(*f);
    out += '\n';
  }
  return out;
}

} // namespace mmx::ir
