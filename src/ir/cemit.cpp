#include "ir/cemit.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <set>
#include <sstream>
#include <string_view>

namespace mmx::ir {

namespace {

const char* kPrelude =
#include "ir/cemit_prelude.inc"
    ;

// Helpers appended after the prelude (variadic alloc, checked read, ...).
const char* kAppendix = R"APP(#include <stdarg.h>
#ifdef _OPENMP
#include <omp.h>
#endif

static mmx_mat* mmx_allocv(int elem, int rank, ...) {
  long long dims[8];
  va_list ap;
  va_start(ap, rank);
  for (int d = 0; d < rank; ++d) dims[d] = va_arg(ap, long long);
  va_end(ap);
  return mmx_alloc(elem, rank, dims);
}

static mmx_mat* mmx_checked(mmx_mat* m, int elem, int rank) {
  mmx_check_meta(m, elem, rank);
  mmx_retain(m);
  return m;
}

static int mmx_num_threads(void) {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}
)APP";

// Unchecked helper variants, appended only under --bounds-checks=off/auto
// so the default (=on) output stays byte-identical to the historical
// emitter. Each mirrors its prelude counterpart minus the mmx_fail guard;
// codegen routes a call here only when the guard is structurally absent
// (off) or the shapecheck pass proved it redundant (auto).
const char* kNcAppendix = R"NCAPP(
/* ---- unchecked variants (--bounds-checks=off / proven-safe sites) ----- */
static mmx_mat* mmx_alloc_nc(int elem, int rank, const long long* dims) {
  long long n = 1;
  for (int d = 0; d < rank; ++d) n *= dims[d];
  mmx_mat* m = (mmx_mat*)calloc(1, sizeof(mmx_mat) + (size_t)n * mmx_esize(elem));
  if (!m) mmx_fail("out of memory");
  m->refcount = 1;
  m->elem = elem;
  m->rank = rank;
  for (int d = 0; d < rank; ++d) m->dims[d] = dims[d];
  MMX_PROF_ALLOC(sizeof(mmx_mat) + (size_t)n * mmx_esize(elem));
  return m;
}

static mmx_mat* mmx_allocv_nc(int elem, int rank, ...) {
  long long dims[8];
  va_list ap;
  va_start(ap, rank);
  for (int d = 0; d < rank; ++d) dims[d] = va_arg(ap, long long);
  va_end(ap);
  return mmx_alloc_nc(elem, rank, dims);
}

static mmx_mat* mmx_checked_nc(mmx_mat* m, int elem, int rank) {
  (void)elem;
  (void)rank;
  mmx_retain(m);
  return m;
}

static mmx_mat* mmx_ew_nc(int op, mmx_mat* a, mmx_mat* b) {
  mmx_mat* r = mmx_alloc_nc(a->elem, a->rank, a->dims);
  long long n = mmx_count(a);
  if (a->elem == 1)
    for (long long k = 0; k < n; ++k)
      mmx_f(r)[k] = mmx_opf(op, mmx_f(a)[k], mmx_f(b)[k]);
  else
    for (long long k = 0; k < n; ++k)
      mmx_i(r)[k] = mmx_opi(op, mmx_i(a)[k], mmx_i(b)[k]);
  return r;
}

static mmx_mat* mmx_cmp_nc(int op, mmx_mat* a, mmx_mat* b) {
  mmx_mat* r = mmx_alloc_nc(2, a->rank, a->dims);
  long long n = mmx_count(a);
  if (a->elem == 1)
    for (long long k = 0; k < n; ++k)
      mmx_b(r)[k] = (unsigned char)mmx_cmpf(op, mmx_f(a)[k], mmx_f(b)[k]);
  else
    for (long long k = 0; k < n; ++k)
      mmx_b(r)[k] = (unsigned char)mmx_cmpi(op, mmx_i(a)[k], mmx_i(b)[k]);
  return r;
}

static mmx_mat* mmx_matmul_nc(mmx_mat* a, mmx_mat* b) {
  /* Shape checks elided; the blocked OpenMP cores from the prelude do the
   * work, so checked and unchecked builds share one matmul. */
  MMX_PROF_KERNEL_BEGIN();
  long long m = a->dims[0], kk = a->dims[1], n = b->dims[1];
  long long dims[2] = {m, n};
  mmx_mat* r = mmx_alloc_nc(a->elem, 2, dims);
  if (!mmx_matmul_coref_ptr) mmx_backend_select();
  if (a->elem == 1)
    mmx_matmul_coref_ptr(mmx_f(a), mmx_f(b), mmx_f(r), m, kk, n);
  else
    mmx_matmul_corei_ptr(mmx_i(a), mmx_i(b), mmx_i(r), m, kk, n);
  MMX_PROF_KERNEL_END();
  return r;
}

static void mmx_resolve_sels_nc(mmx_mat* m, const mmx_sel* sels,
                                mmx_rsel* rs) {
  for (int d = 0; d < m->rank; ++d) {
    long long n = m->dims[d];
    const mmx_sel* s = &sels[d];
    rs[d].keep = s->kind != 0;
    switch (s->kind) {
      case 0:
        rs[d].idx = (long long*)malloc(sizeof(long long));
        rs[d].idx[0] = s->a;
        rs[d].count = 1;
        break;
      case 1: {
        rs[d].count = s->b - s->a + 1;
        rs[d].idx = (long long*)malloc(sizeof(long long) * (size_t)(rs[d].count > 0 ? rs[d].count : 1));
        for (long long k = 0; k < rs[d].count; ++k) rs[d].idx[k] = s->a + k;
        break;
      }
      case 2:
        rs[d].count = n;
        rs[d].idx = (long long*)malloc(sizeof(long long) * (size_t)(n > 0 ? n : 1));
        for (long long k = 0; k < n; ++k) rs[d].idx[k] = k;
        break;
      default: {
        mmx_mat* mk = s->mask;
        rs[d].count = 0;
        rs[d].idx = (long long*)malloc(sizeof(long long) * (size_t)(n > 0 ? n : 1));
        for (long long k = 0; k < n; ++k)
          if (mmx_b(mk)[k]) rs[d].idx[rs[d].count++] = k;
        break;
      }
    }
  }
}

static mmx_mat* mmx_index_nc(mmx_mat* m, const mmx_sel* sels) {
  mmx_rsel rs[8];
  mmx_resolve_sels_nc(m, sels, rs);
  long long dims[8];
  int outRank = 0;
  for (int d = 0; d < m->rank; ++d)
    if (rs[d].keep) dims[outRank++] = rs[d].count;
  if (outRank == 0) {
    long long one = 1;
    dims[0] = one;
    outRank = 1;
  }
  mmx_mat* r = mmx_alloc_nc(m->elem, outRank, dims);
  struct mmx_copy_ctx ctx = {m, mmx_data(r), mmx_esize(m->elem)};
  mmx_foreach(m, rs, mmx_copy_cell, &ctx);
  mmx_free_sels(m, rs);
  return r;
}

static void mmx_index_store_nc(mmx_mat* m, const mmx_sel* sels, mmx_mat* v) {
  mmx_rsel rs[8];
  mmx_resolve_sels_nc(m, sels, rs);
  struct mmx_store_ctx ctx = {m, v, mmx_esize(m->elem)};
  mmx_foreach(m, rs, mmx_store_cell, &ctx);
  mmx_free_sels(m, rs);
}

static void mmx_index_store_f_nc(mmx_mat* m, const mmx_sel* sels, float v) {
  mmx_rsel rs[8];
  mmx_resolve_sels_nc(m, sels, rs);
  struct mmx_bcast_ctx ctx = {m, v, 0, 0};
  mmx_foreach(m, rs, mmx_bcast_f, &ctx);
  mmx_free_sels(m, rs);
}
static void mmx_index_store_i_nc(mmx_mat* m, const mmx_sel* sels, int v) {
  mmx_rsel rs[8];
  mmx_resolve_sels_nc(m, sels, rs);
  struct mmx_bcast_ctx ctx = {m, 0, v, 0};
  mmx_foreach(m, rs, mmx_bcast_i, &ctx);
  mmx_free_sels(m, rs);
}
static void mmx_index_store_b_nc(mmx_mat* m, const mmx_sel* sels,
                                 unsigned char v) {
  mmx_rsel rs[8];
  mmx_resolve_sels_nc(m, sels, rs);
  struct mmx_bcast_ctx ctx = {m, 0, 0, v};
  mmx_foreach(m, rs, mmx_bcast_b, &ctx);
  mmx_free_sels(m, rs);
}
)NCAPP";

// ---- memsys (ISSUE 9): thread-caching matrix allocator ------------------
//
// Spliced into the prelude unless --alloc=system (whose output must stay
// byte-identical to the historical calloc/free emitter). The policy
// constants and counter bump points mirror src/runtime/memsys.cpp
// verbatim — see its header comment; single-threaded runs of the same
// program must produce byte-equal rt.alloc.cache.* counters in the
// interpreter and the emitted C. Touch one side only in lockstep with the
// other.
//
// Inserted immediately after the prelude's mmx_esize line (mmx_fail is
// already defined above that point; mmx_alloc below it calls into this).
const char* kMsRuntime = R"MS(
/* ---- mmx_ms: thread-caching matrix allocator (mmc --alloc) ------------ */
#ifndef MMX_ALLOC_DEFAULT
#define MMX_ALLOC_DEFAULT "auto"
#endif
enum {
  MMX_MS_CLASSES = 24,
  MMX_MS_SYSTEM = 1,
  MMX_MS_CACHE = 2,
  MMX_MS_ARENA = 3,
  MMX_MS_HUGE = 4
};
typedef struct {
  unsigned kind;
  unsigned cls;
  unsigned long long bytes;
} mmx_ms_hdr;

static int mmx_ms_mode; /* 0 = unresolved (mmx_ms_select not yet run) */
static unsigned long long mmx_ms_hits, mmx_ms_misses, mmx_ms_flushes;
static unsigned long long mmx_ms_cached_bytes;

static size_t mmx_ms_cap(unsigned cls) { return (size_t)16 << cls; }
static unsigned mmx_ms_class(size_t total) {
  unsigned c = 0;
  while (mmx_ms_cap(c) < total) ++c;
  return c;
}
/* Magazine capacity: ~256 KiB of blocks per class, clamped to [4, 64]. */
static unsigned mmx_ms_magcap(unsigned cls) {
  size_t n = ((size_t)256 << 10) / mmx_ms_cap(cls);
  if (n < 4) return 4;
  if (n > 64) return 64;
  return (unsigned)n;
}
static unsigned mmx_ms_depotcap(unsigned cls) { return 4 * mmx_ms_magcap(cls); }

/* Free-list link, stored in the first word of the (dead) payload. */
static void** mmx_ms_next(mmx_ms_hdr* h) { return (void**)(h + 1); }

static int mmx_ms_depot_lock;
static mmx_ms_hdr* mmx_ms_depot_head[MMX_MS_CLASSES];
static unsigned mmx_ms_depot_count[MMX_MS_CLASSES];

static void mmx_ms_lock(void) {
  while (__atomic_exchange_n(&mmx_ms_depot_lock, 1, __ATOMIC_ACQUIRE))
    ;
}
static void mmx_ms_unlock(void) {
  __atomic_store_n(&mmx_ms_depot_lock, 0, __ATOMIC_RELEASE);
}

/* Caller holds the depot lock. Pushes one block; evicts to the system
 * when the class is over capacity. */
static void mmx_ms_depot_push(mmx_ms_hdr* h) {
  unsigned cls = h->cls;
  *mmx_ms_next(h) = (void*)mmx_ms_depot_head[cls];
  mmx_ms_depot_head[cls] = h;
  unsigned n = __atomic_add_fetch(&mmx_ms_depot_count[cls], 1, __ATOMIC_RELAXED);
  while (n > mmx_ms_depotcap(cls)) {
    mmx_ms_hdr* evict = mmx_ms_depot_head[cls];
    mmx_ms_depot_head[cls] = (mmx_ms_hdr*)*mmx_ms_next(evict);
    n = __atomic_sub_fetch(&mmx_ms_depot_count[cls], 1, __ATOMIC_RELAXED);
    __atomic_sub_fetch(&mmx_ms_cached_bytes, mmx_ms_cap(cls), __ATOMIC_RELAXED);
    free(evict);
  }
}

static __thread mmx_ms_hdr* mmx_ms_mag_head[MMX_MS_CLASSES];
static __thread unsigned mmx_ms_mag_count[MMX_MS_CLASSES];

static void* mmx_ms_cache_alloc(size_t bytes, size_t total) {
  unsigned cls = mmx_ms_class(total);
  size_t cap = mmx_ms_cap(cls);
  mmx_ms_hdr* h = 0;
  if (mmx_ms_mag_head[cls]) {
    __atomic_add_fetch(&mmx_ms_hits, 1, __ATOMIC_RELAXED);
    h = mmx_ms_mag_head[cls];
    mmx_ms_mag_head[cls] = (mmx_ms_hdr*)*mmx_ms_next(h);
    --mmx_ms_mag_count[cls];
    __atomic_sub_fetch(&mmx_ms_cached_bytes, cap, __ATOMIC_RELAXED);
  } else {
    __atomic_add_fetch(&mmx_ms_misses, 1, __ATOMIC_RELAXED);
    if (__atomic_load_n(&mmx_ms_depot_count[cls], __ATOMIC_RELAXED) > 0) {
      mmx_ms_lock();
      unsigned want = mmx_ms_magcap(cls) / 2;
      while (want > 0 && mmx_ms_depot_head[cls]) {
        mmx_ms_hdr* b = mmx_ms_depot_head[cls];
        mmx_ms_depot_head[cls] = (mmx_ms_hdr*)*mmx_ms_next(b);
        __atomic_sub_fetch(&mmx_ms_depot_count[cls], 1, __ATOMIC_RELAXED);
        --want;
        if (!h) {
          h = b; /* first refilled block services this allocation */
          __atomic_sub_fetch(&mmx_ms_cached_bytes, cap, __ATOMIC_RELAXED);
        } else {
          *mmx_ms_next(b) = (void*)mmx_ms_mag_head[cls];
          mmx_ms_mag_head[cls] = b;
          ++mmx_ms_mag_count[cls];
        }
      }
      mmx_ms_unlock();
    }
    if (!h) h = (mmx_ms_hdr*)malloc(cap);
    if (!h) mmx_fail("out of memory");
  }
  h->kind = MMX_MS_CACHE;
  h->cls = cls;
  h->bytes = bytes;
  return h + 1;
}

static void mmx_ms_cache_free(mmx_ms_hdr* h) {
  unsigned cls = h->cls;
  size_t cap = mmx_ms_cap(cls);
  __atomic_add_fetch(&mmx_ms_cached_bytes, cap, __ATOMIC_RELAXED);
  *mmx_ms_next(h) = (void*)mmx_ms_mag_head[cls];
  mmx_ms_mag_head[cls] = h;
  ++mmx_ms_mag_count[cls];
  unsigned cap_n = mmx_ms_magcap(cls);
  if (mmx_ms_mag_count[cls] > cap_n) {
    /* Flush the older half to the depot; one flush event per overflow. */
    __atomic_add_fetch(&mmx_ms_flushes, 1, __ATOMIC_RELAXED);
    mmx_ms_lock();
    while (mmx_ms_mag_count[cls] > cap_n / 2) {
      mmx_ms_hdr* b = mmx_ms_mag_head[cls];
      mmx_ms_mag_head[cls] = (mmx_ms_hdr*)*mmx_ms_next(b);
      --mmx_ms_mag_count[cls];
      mmx_ms_depot_push(b);
    }
    mmx_ms_unlock();
  }
}

typedef struct mmx_ms_chunk {
  struct mmx_ms_chunk* next;
  size_t cap;
} mmx_ms_chunk;

static __thread mmx_ms_chunk* mmx_ms_arena_chunks;
static __thread char* mmx_ms_arena_cur;
static __thread size_t mmx_ms_arena_avail;

static void* mmx_ms_arena_alloc(size_t bytes, size_t total) {
  total = (total + 15) & ~(size_t)15;
  if (mmx_ms_arena_avail < total) {
    size_t payload = total > ((size_t)1 << 20) ? total : ((size_t)1 << 20);
    mmx_ms_chunk* c = (mmx_ms_chunk*)malloc(sizeof(mmx_ms_chunk) + payload);
    if (!c) mmx_fail("out of memory");
    c->next = mmx_ms_arena_chunks;
    c->cap = payload;
    mmx_ms_arena_chunks = c;
    mmx_ms_arena_cur = (char*)(c + 1);
    mmx_ms_arena_avail = payload;
  }
  mmx_ms_hdr* h = (mmx_ms_hdr*)mmx_ms_arena_cur;
  mmx_ms_arena_cur += total;
  mmx_ms_arena_avail -= total;
  h->kind = MMX_MS_ARENA;
  h->cls = 0;
  h->bytes = bytes;
  return h + 1;
}

/* Precedence mirrors the mmc runtime: an emit-time-pinned
 * MMX_ALLOC_DEFAULT beats $MMX_ALLOC, which beats the cache default
 * (an env value of "" counts as unset, "auto" as the default chain). */
static void mmx_ms_select(void) {
  const char* nm = MMX_ALLOC_DEFAULT;
  if (!strcmp(nm, "auto")) {
    const char* env = getenv("MMX_ALLOC");
    if (env && *env) nm = env;
  }
  if (!strcmp(nm, "auto") || !strcmp(nm, "cache")) mmx_ms_mode = MMX_MS_CACHE;
  else if (!strcmp(nm, "system")) mmx_ms_mode = MMX_MS_SYSTEM;
  else if (!strcmp(nm, "arena")) mmx_ms_mode = MMX_MS_ARENA;
  else {
    char msg[96];
    snprintf(msg, sizeof msg,
             "unknown allocator '%.32s' (available: system, cache, arena)",
             nm);
    mmx_fail(msg);
  }
}

/* Classifies on bytes + 32: 16 for the mmx_ms_hdr plus 16 mirroring the
 * mmc runtime's refcount cell header, so both backends see identical
 * size-class sequences (and so byte-equal cache counters). */
static void* mmx_ms_alloc(size_t bytes) {
  if (!mmx_ms_mode) mmx_ms_select();
  size_t total = bytes + 2 * sizeof(mmx_ms_hdr);
  if (mmx_ms_mode == MMX_MS_CACHE) {
    if (total <= ((size_t)16 << (MMX_MS_CLASSES - 1)))
      return mmx_ms_cache_alloc(bytes, total);
    mmx_ms_hdr* h = (mmx_ms_hdr*)malloc(sizeof(mmx_ms_hdr) + bytes);
    if (!h) mmx_fail("out of memory");
    h->kind = MMX_MS_HUGE;
    h->cls = 0;
    h->bytes = bytes;
    return h + 1;
  }
  if (mmx_ms_mode == MMX_MS_ARENA) return mmx_ms_arena_alloc(bytes, total);
  mmx_ms_hdr* h = (mmx_ms_hdr*)malloc(sizeof(mmx_ms_hdr) + bytes);
  if (!h) mmx_fail("out of memory");
  h->kind = MMX_MS_SYSTEM;
  h->cls = 0;
  h->bytes = bytes;
  return h + 1;
}

static void mmx_ms_free(void* p) {
  mmx_ms_hdr* h = (mmx_ms_hdr*)p - 1;
  switch (h->kind) {
  case MMX_MS_CACHE:
    mmx_ms_cache_free(h);
    return;
  case MMX_MS_ARENA:
    return; /* arena blocks are reclaimed wholesale at process exit */
  default:
    free(h);
    return;
  }
}
)MS";

// Uninitialized-allocation helper, appended to the appendix only when the
// shapecheck pass proved at least one genarray result fully written (every
// element stored before any read) AND the memsys runtime is present. Keeps
// mmx_alloc's negative-dimension guard but skips the element memset — only
// the mmx_mat header is zeroed.
const char* kMsUninit = R"MSU(
static mmx_mat* mmx_allocv_u(int elem, int rank, ...) {
  long long dims[8];
  va_list ap;
  va_start(ap, rank);
  for (int d = 0; d < rank; ++d) dims[d] = va_arg(ap, long long);
  va_end(ap);
  long long n = 1;
  for (int d = 0; d < rank; ++d) {
    if (dims[d] < 0) mmx_fail("negative matrix dimension");
    n *= dims[d];
  }
  size_t bytes = sizeof(mmx_mat) + (size_t)n * mmx_esize(elem);
  mmx_mat* m = (mmx_mat*)mmx_ms_alloc(bytes);
  memset(m, 0, sizeof(mmx_mat)); /* header only; every element is stored */
  m->refcount = 1;
  m->elem = elem;
  m->rank = rank;
  for (int d = 0; d < rank; ++d) m->dims[d] = dims[d];
  MMX_PROF_ALLOC(bytes);
  return m;
}
)MSU";

// The splice anchors. kMsEsizeLine locates the insertion point for
// kMsRuntime; kMsCallocLines is the calloc+guard pair replaced (in both
// mmx_alloc and mmx_alloc_nc) by kMsAllocLines.
const char* kMsEsizeLine =
    "static size_t mmx_esize(int elem) { return elem == 2 ? 1 : 4; }\n";
const char* kMsCallocLines =
    "  mmx_mat* m = (mmx_mat*)calloc(1, sizeof(mmx_mat) + (size_t)n * "
    "mmx_esize(elem));\n"
    "  if (!m) mmx_fail(\"out of memory\");\n";
const char* kMsAllocLines =
    "  size_t bytes = sizeof(mmx_mat) + (size_t)n * mmx_esize(elem);\n"
    "  mmx_mat* m = (mmx_mat*)mmx_ms_alloc(bytes);\n"
    "  memset(m, 0, bytes);\n";

// Cache-counter lines spliced into kProfDump after the rt.alloc.bytes
// line when the memsys runtime is present.
const char* kMsDumpAnchor =
    "      fprintf(f, \"  \\\"rt.alloc.bytes\\\": %llu,\\n\", "
    "mmx_prof_alloc_bytes);\n";
const char* kMsDumpLines =
    "      fprintf(f, \"  \\\"rt.alloc.cache.cachedBytes\\\": %llu,\\n\",\n"
    "              __atomic_load_n(&mmx_ms_cached_bytes, __ATOMIC_RELAXED));\n"
    "      fprintf(f, \"  \\\"rt.alloc.cache.flushes\\\": %llu,\\n\",\n"
    "              __atomic_load_n(&mmx_ms_flushes, __ATOMIC_RELAXED));\n"
    "      fprintf(f, \"  \\\"rt.alloc.cache.hits\\\": %llu,\\n\",\n"
    "              __atomic_load_n(&mmx_ms_hits, __ATOMIC_RELAXED));\n"
    "      fprintf(f, \"  \\\"rt.alloc.cache.misses\\\": %llu,\\n\",\n"
    "              __atomic_load_n(&mmx_ms_misses, __ATOMIC_RELAXED));\n";

/// Replaces the first occurrence of `from` in `hay`; false when absent
/// (a missing splice anchor — reported as an internal emit error).
bool replaceOnce(std::string& hay, std::string_view from,
                 std::string_view to) {
  size_t pos = hay.find(from);
  if (pos == std::string::npos) return false;
  hay.replace(pos, from.size(), to);
  return true;
}

// mmx_prof runtime (ISSUE 5), emitted BEFORE the prelude when
// --instrument != off so the MMX_PROF_* hook lines planted in the prelude
// expand to real code. When instrumentation is off those hook lines are
// stripped instead (see stripProfLines) and none of this text is emitted —
// the output is byte-identical to the uninstrumented emitter.
//
// The dump honors the same env-var contract as the compiler's
// MMX_STATS_JSON bench hook: $MMX_PROF_JSON gets the flat stats object
// (same key schema as --stats-json: counters verbatim, sites as
// <name>.count/.ns/.max_ns), $MMX_PROF_TRACE gets Chrome trace-event JSON
// (same shape as --trace-json, but pid 2 so a merged file shows compiler
// and runtime as two processes on one timeline).
const char* kProfRuntime = R"PROF(/* ---- mmx_prof: runtime instrumentation (mmc --instrument) ------------- */
#include <math.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>
#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>
#endif
#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#endif
#if defined(__GLIBC__)
#include <execinfo.h>
#endif

typedef struct {
  const char* name; /* span label, e.g. "with-loop@prog.xc:12" */
  const char* cat;  /* trace category */
  unsigned long long count, total_ns, max_ns;
} mmx_prof_site;

static unsigned long long mmx_prof_t0;

static unsigned long long mmx_prof_raw_ns(void) {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (unsigned long long)ts.tv_sec * 1000000000ull +
         (unsigned long long)ts.tv_nsec;
}

static unsigned long long mmx_prof_now(void) {
  return mmx_prof_raw_ns() - mmx_prof_t0;
}

/* Global counters. The rt.* names match the interpreter runtime's metrics
 * registry, so an instrumented emitted-C run and an interp --stats-json
 * run of the same program produce directly comparable counter sets. */
static unsigned long long mmx_prof_allocs, mmx_prof_alloc_bytes,
    mmx_prof_live_bytes, mmx_prof_peak_bytes, mmx_prof_retains,
    mmx_prof_releases, mmx_prof_mm_tiles;

enum { MMX_PROF_MAX_THREADS = 256 };
static unsigned long long mmx_prof_thread_busy[MMX_PROF_MAX_THREADS];

static __thread int mmx_prof_tid_tls = -1;
static int mmx_prof_ntids;
static int mmx_prof_tid(void) {
  if (mmx_prof_tid_tls < 0)
    mmx_prof_tid_tls =
        (int)__atomic_fetch_add(&mmx_prof_ntids, 1, __ATOMIC_RELAXED);
  return mmx_prof_tid_tls;
}

#ifdef MMX_PROF_WANT_TRACE
enum { MMX_PROF_MAX_EVENTS = 1 << 16 };
typedef struct {
  const char* name;
  const char* cat;
  unsigned long long ts, dur;
  int tid;
} mmx_prof_ev;
static mmx_prof_ev mmx_prof_evs[MMX_PROF_MAX_EVENTS];
static unsigned long long mmx_prof_ev_n; /* may exceed the cap: dropped */
#endif

static void mmx_prof_ev_push(const char* name, const char* cat,
                             unsigned long long ts, unsigned long long dur) {
#ifdef MMX_PROF_WANT_TRACE
  unsigned long long k =
      __atomic_fetch_add(&mmx_prof_ev_n, 1, __ATOMIC_RELAXED);
  if (k < MMX_PROF_MAX_EVENTS) {
    mmx_prof_evs[k].name = name;
    mmx_prof_evs[k].cat = cat;
    mmx_prof_evs[k].ts = ts;
    mmx_prof_evs[k].dur = dur;
    mmx_prof_evs[k].tid = mmx_prof_tid();
  }
#else
  (void)name;
  (void)cat;
  (void)ts;
  (void)dur;
#endif
}

static void mmx_prof_u64_max(unsigned long long* slot, unsigned long long v) {
  unsigned long long prev = __atomic_load_n(slot, __ATOMIC_RELAXED);
  while (v > prev && !__atomic_compare_exchange_n(slot, &prev, v, 0,
                                                  __ATOMIC_RELAXED,
                                                  __ATOMIC_RELAXED)) {
  }
}

static void mmx_prof_site_hit(mmx_prof_site* s, unsigned long long t0) {
  unsigned long long dur = mmx_prof_now() - t0;
  __atomic_fetch_add(&s->count, 1, __ATOMIC_RELAXED);
  __atomic_fetch_add(&s->total_ns, dur, __ATOMIC_RELAXED);
  mmx_prof_u64_max(&s->max_ns, dur);
  mmx_prof_ev_push(s->name, s->cat, t0, dur);
}

/* Log2-bucketed distributions (ISSUE 10), bucket-compatible with the
 * interpreter registry's metrics::Histogram (bucket 0 holds zero, bucket
 * b holds [2^(b-1), 2^b)) so the dumped .count/.sum fields are directly
 * comparable across the two runtimes. */
enum { MMX_PROF_HIST_BUCKETS = 64 };
typedef struct {
  const char* name;
  unsigned long long count, sum, max;
  unsigned long long buckets[MMX_PROF_HIST_BUCKETS];
} mmx_prof_hist;

static mmx_prof_hist mmx_prof_hist_alloc = {"rt.alloc.size", 0, 0, 0, {0}};
static mmx_prof_hist mmx_prof_hist_matmul = {"kernel.matmul.latency_ns",
                                             0, 0, 0, {0}};
static mmx_prof_hist mmx_prof_hist_panel = {"omp.panel.latency_ns",
                                            0, 0, 0, {0}};

static void mmx_prof_hist_hit(mmx_prof_hist* h, unsigned long long v) {
  unsigned b = 0;
  unsigned long long x = v;
  while (x) {
    ++b;
    x >>= 1;
  }
  if (b >= MMX_PROF_HIST_BUCKETS) b = MMX_PROF_HIST_BUCKETS - 1;
  __atomic_fetch_add(&h->count, 1, __ATOMIC_RELAXED);
  __atomic_fetch_add(&h->sum, v, __ATOMIC_RELAXED);
  mmx_prof_u64_max(&h->max, v);
  __atomic_fetch_add(&h->buckets[b], 1, __ATOMIC_RELAXED);
}

/* Hardware PMU counters (ISSUE 10): opt-in via $MMX_PERF_COUNTERS, scoped
 * around the matmul kernel like mmc --perf-counters around rt::matmul.
 * Calling-thread scoped; a denied perf_event_open parks the group and
 * every skipped scope counts into the presence-only pmu.skipped row. */
static unsigned long long mmx_prof_pmu_vals[4];
static unsigned long long mmx_prof_pmu_skips;
static int mmx_prof_pmu_state; /* 0 untried, 1 open, -1 unavailable */
#if defined(__linux__)
static int mmx_prof_pmu_fds[4] = {-1, -1, -1, -1};
#endif

static int mmx_prof_pmu_wanted(void) {
  static int cached = -1;
  if (cached < 0) {
    const char* e = getenv("MMX_PERF_COUNTERS");
    cached = (e && *e && strcmp(e, "0") != 0) ? 1 : 0;
  }
  return cached;
}

static void mmx_prof_pmu_open(void) {
#if defined(__linux__)
  static const unsigned long long cfgs[4] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
  int i, j;
  for (i = 0; i < 4; ++i) {
    struct perf_event_attr a;
    memset(&a, 0, sizeof(a));
    a.type = PERF_TYPE_HARDWARE;
    a.size = sizeof(a);
    a.config = cfgs[i];
    a.disabled = 1;
    a.exclude_kernel = 1;
    a.exclude_hv = 1;
    mmx_prof_pmu_fds[i] =
        (int)syscall(__NR_perf_event_open, &a, 0, -1, -1, 0);
    if (mmx_prof_pmu_fds[i] < 0) {
      for (j = 0; j < i; ++j) {
        close(mmx_prof_pmu_fds[j]);
        mmx_prof_pmu_fds[j] = -1;
      }
      mmx_prof_pmu_state = -1;
      return;
    }
  }
  mmx_prof_pmu_state = 1;
#else
  mmx_prof_pmu_state = -1;
#endif
}

static void mmx_prof_pmu_begin(void) {
  if (!mmx_prof_pmu_wanted()) return;
  if (mmx_prof_pmu_state == 0) mmx_prof_pmu_open();
  if (mmx_prof_pmu_state < 0) {
    __atomic_fetch_add(&mmx_prof_pmu_skips, 1, __ATOMIC_RELAXED);
    return;
  }
#if defined(__linux__)
  {
    int i;
    for (i = 0; i < 4; ++i) {
      ioctl(mmx_prof_pmu_fds[i], PERF_EVENT_IOC_RESET, 0);
      ioctl(mmx_prof_pmu_fds[i], PERF_EVENT_IOC_ENABLE, 0);
    }
  }
#endif
}

static void mmx_prof_pmu_end(void) {
  if (mmx_prof_pmu_state != 1) return;
#if defined(__linux__)
  {
    int i;
    for (i = 0; i < 4; ++i) {
      unsigned long long v = 0;
      ioctl(mmx_prof_pmu_fds[i], PERF_EVENT_IOC_DISABLE, 0);
      if (read(mmx_prof_pmu_fds[i], &v, sizeof(v)) == sizeof(v))
        __atomic_fetch_add(&mmx_prof_pmu_vals[i], v, __ATOMIC_RELAXED);
    }
  }
#endif
}

static void mmx_prof_alloc_hit(unsigned long long bytes) {
  __atomic_fetch_add(&mmx_prof_allocs, 1, __ATOMIC_RELAXED);
  __atomic_fetch_add(&mmx_prof_alloc_bytes, bytes, __ATOMIC_RELAXED);
  unsigned long long live =
      __atomic_add_fetch(&mmx_prof_live_bytes, bytes, __ATOMIC_RELAXED);
  mmx_prof_u64_max(&mmx_prof_peak_bytes, live);
  mmx_prof_hist_hit(&mmx_prof_hist_alloc, bytes);
}

static void mmx_prof_free_hit(unsigned long long bytes) {
  __atomic_fetch_sub(&mmx_prof_live_bytes, bytes, __ATOMIC_RELAXED);
}

/* Per-thread busy time of the OMP row-panel loops, indexed by the dense
 * mmx_prof thread id (0 = whichever thread hit the profiler first). */
static void mmx_prof_panel_end(unsigned long long t0,
                               unsigned long long tiles) {
  int tid = mmx_prof_tid();
  unsigned long long dur = mmx_prof_now() - t0;
  if (tid < MMX_PROF_MAX_THREADS)
    __atomic_fetch_add(&mmx_prof_thread_busy[tid], dur, __ATOMIC_RELAXED);
  __atomic_fetch_add(&mmx_prof_mm_tiles, tiles, __ATOMIC_RELAXED);
  mmx_prof_hist_hit(&mmx_prof_hist_panel, dur);
}

static mmx_prof_site mmx_prof_site_matmul = {"kernel.matmul", "kernel",
                                             0, 0, 0};

static void mmx_prof_kernel_end(unsigned long long t0) {
  mmx_prof_pmu_end();
  mmx_prof_hist_hit(&mmx_prof_hist_matmul, mmx_prof_now() - t0);
  mmx_prof_site_hit(&mmx_prof_site_matmul, t0);
}

/* Hooks the prelude's mmx_alloc / mmx_retain / mmx_release / matmul cores
 * expand. The release hook reads refcount==1 before the atomic decrement
 * to credit freed bytes; concurrent releases of one matrix can misattribute
 * the final free, so live_bytes is near-exact under contention. */
#define MMX_PROF_ALLOC(bytes) mmx_prof_alloc_hit((unsigned long long)(bytes))
#define MMX_PROF_RETAIN(m) \
  do { \
    if (m) __atomic_fetch_add(&mmx_prof_retains, 1, __ATOMIC_RELAXED); \
  } while (0)
#define MMX_PROF_RELEASE(m) \
  do { \
    if (m) { \
      __atomic_fetch_add(&mmx_prof_releases, 1, __ATOMIC_RELAXED); \
      if ((m)->refcount == 1) \
        mmx_prof_free_hit(sizeof(mmx_mat) + \
                          (unsigned long long)mmx_count(m) * \
                              mmx_esize((m)->elem)); \
    } \
  } while (0)
#define MMX_PROF_PANEL_BEGIN() unsigned long long __mmx_pt0 = mmx_prof_now()
#define MMX_PROF_PANEL_END(tiles) \
  mmx_prof_panel_end(__mmx_pt0, (unsigned long long)(tiles))
#define MMX_PROF_KERNEL_BEGIN() \
  unsigned long long __mmx_kt0 = (mmx_prof_pmu_begin(), mmx_prof_now())
#define MMX_PROF_KERNEL_END() mmx_prof_kernel_end(__mmx_kt0)

)PROF";

// Emitted after the site table (it iterates mmx_prof_sites, which lists
// every codegen site the emitter created plus the builtin matmul site).
const char* kProfDump = R"PROFDUMP(
static void mmx_prof_json_chars(FILE* f, const char* s) {
  for (; *s; ++s) {
    unsigned char c = (unsigned char)*s;
    if (c == '"' || c == '\\') {
      fputc('\\', f);
      fputc(c, f);
    } else if (c == '\n') {
      fputs("\\n", f);
    } else if (c == '\t') {
      fputs("\\t", f);
    } else if (c < 0x20) {
      fprintf(f, "\\u%04x", c);
    } else {
      fputc(c, f);
    }
  }
}

static void mmx_prof_json_key(FILE* f, const char* name, const char* suffix) {
  fputc('"', f);
  mmx_prof_json_chars(f, name);
  fputs(suffix, f);
  fputc('"', f);
}

/* Quantile estimation mirroring the interpreter registry exactly: rank =
 * ceil(q * count), linear interpolation within the owning bucket, clamped
 * to the observed max (bucket 63 uses the max as its upper edge). */
static unsigned long long mmx_prof_hist_quantile(const mmx_prof_hist* h,
                                                 double q) {
  unsigned long long count = h->count;
  if (!count) return 0;
  unsigned long long rank = (unsigned long long)ceil(q * (double)count);
  if (!rank) rank = 1;
  if (rank > count) rank = count;
  unsigned long long cum = 0;
  for (unsigned b = 0; b < MMX_PROF_HIST_BUCKETS; ++b) {
    unsigned long long n = h->buckets[b];
    if (!n) continue;
    if (cum + n >= rank) {
      unsigned long long lo = b == 0 ? 0 : (1ull << (b - 1));
      unsigned long long hi = b == 0 ? 1 : (b == 63 ? h->max : (1ull << b));
      double frac = (double)(rank - cum) / (double)n;
      unsigned long long v =
          lo + (unsigned long long)(frac * (double)(hi - lo));
      return v < h->max ? v : h->max;
    }
    cum += n;
  }
  return h->max;
}

static void mmx_prof_dump_hist(FILE* f, const mmx_prof_hist* h) {
  if (!h->count) return;
  fprintf(f, ",\n  \"%s.count\": %llu", h->name, h->count);
  fprintf(f, ",\n  \"%s.sum\": %llu", h->name, h->sum);
  fprintf(f, ",\n  \"%s.p50\": %llu", h->name,
          mmx_prof_hist_quantile(h, 0.50));
  fprintf(f, ",\n  \"%s.p95\": %llu", h->name,
          mmx_prof_hist_quantile(h, 0.95));
  fprintf(f, ",\n  \"%s.p99\": %llu", h->name,
          mmx_prof_hist_quantile(h, 0.99));
  fprintf(f, ",\n  \"%s.max\": %llu", h->name, h->max);
}

/* Continuous stats export (ISSUE 10 pillar 4): $MMX_STATS_INTERVAL_MS
 * spawns a sampler thread that appends one JSONL delta line per interval
 * to $MMX_STATS_JSONL (default mmx_stats.jsonl). Monotonic keys emit as
 * nonzero deltas; histogram max/p50/p95/p99 emit verbatim when nonzero,
 * matching the mmc exporter's schema. */
#if defined(__unix__) || defined(__APPLE__)
static FILE* mmx_prof_export_file;
static pthread_mutex_t mmx_prof_export_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_t mmx_prof_export_thread;
static int mmx_prof_export_running;
static unsigned mmx_prof_export_ms;
static unsigned long long mmx_prof_export_seq;

static void mmx_prof_export_delta(FILE* f, const char* name,
                                  const char* suffix,
                                  unsigned long long cur,
                                  unsigned long long* prev) {
  if (cur <= *prev) return;
  fputs(", ", f);
  mmx_prof_json_key(f, name, suffix);
  fprintf(f, ": %llu", cur - *prev);
  *prev = cur;
}

static void mmx_prof_export_instant(FILE* f, const char* name,
                                    const char* suffix,
                                    unsigned long long v) {
  if (!v) return;
  fputs(", ", f);
  mmx_prof_json_key(f, name, suffix);
  fprintf(f, ": %llu", v);
}

static void mmx_prof_export_line(void) {
  enum { MMX_PROF_EXPORT_MAX_SITES = 256 };
  static unsigned long long p_allocs, p_bytes, p_retains, p_releases,
      p_tiles;
  static unsigned long long p_sites[MMX_PROF_EXPORT_MAX_SITES][2];
  static unsigned long long p_hists[3][2];
  const mmx_prof_hist* hs[3] = {&mmx_prof_hist_alloc, &mmx_prof_hist_matmul,
                                &mmx_prof_hist_panel};
  FILE* f = mmx_prof_export_file;
  if (!f) return;
  pthread_mutex_lock(&mmx_prof_export_mu);
  fprintf(f, "{\"export.seq\": %llu, \"export.ts_ms\": %llu",
          mmx_prof_export_seq++,
          (unsigned long long)(mmx_prof_raw_ns() / 1000000ull));
  mmx_prof_export_delta(f, "rt.alloc.count", "", mmx_prof_allocs, &p_allocs);
  mmx_prof_export_delta(f, "rt.alloc.bytes", "", mmx_prof_alloc_bytes,
                        &p_bytes);
  mmx_prof_export_delta(f, "rt.rc.retains", "", mmx_prof_retains, &p_retains);
  mmx_prof_export_delta(f, "rt.rc.releases", "", mmx_prof_releases,
                        &p_releases);
  mmx_prof_export_delta(f, "kernel.matmul.tiles", "", mmx_prof_mm_tiles,
                        &p_tiles);
  for (int i = 0; mmx_prof_sites[i] && i < MMX_PROF_EXPORT_MAX_SITES; ++i) {
    mmx_prof_site* s = mmx_prof_sites[i];
    mmx_prof_export_delta(f, s->name, ".count", s->count, &p_sites[i][0]);
    mmx_prof_export_delta(f, s->name, ".ns", s->total_ns, &p_sites[i][1]);
  }
  for (int i = 0; i < 3; ++i) {
    mmx_prof_export_delta(f, hs[i]->name, ".count", hs[i]->count,
                          &p_hists[i][0]);
    mmx_prof_export_delta(f, hs[i]->name, ".sum", hs[i]->sum,
                          &p_hists[i][1]);
    mmx_prof_export_instant(f, hs[i]->name, ".max", hs[i]->max);
    mmx_prof_export_instant(f, hs[i]->name, ".p50",
                            mmx_prof_hist_quantile(hs[i], 0.50));
    mmx_prof_export_instant(f, hs[i]->name, ".p95",
                            mmx_prof_hist_quantile(hs[i], 0.95));
    mmx_prof_export_instant(f, hs[i]->name, ".p99",
                            mmx_prof_hist_quantile(hs[i], 0.99));
  }
  fputs("}\n", f);
  fflush(f);
  pthread_mutex_unlock(&mmx_prof_export_mu);
}

static void* mmx_prof_export_loop(void* arg) {
  (void)arg;
  while (__atomic_load_n(&mmx_prof_export_running, __ATOMIC_RELAXED)) {
    struct timespec ts;
    ts.tv_sec = mmx_prof_export_ms / 1000u;
    ts.tv_nsec = (long)(mmx_prof_export_ms % 1000u) * 1000000L;
    nanosleep(&ts, 0);
    mmx_prof_export_line();
  }
  return 0;
}

static void mmx_prof_export_start(void) {
  const char* ms = getenv("MMX_STATS_INTERVAL_MS");
  if (!ms || !*ms) return;
  long interval = strtol(ms, 0, 10);
  if (interval <= 0) return;
  const char* path = getenv("MMX_STATS_JSONL");
  mmx_prof_export_file =
      fopen(path && *path ? path : "mmx_stats.jsonl", "w");
  if (!mmx_prof_export_file) return;
  mmx_prof_export_ms = (unsigned)interval;
  mmx_prof_export_running = 1;
  mmx_prof_export_line(); /* sync first line: schema visible immediately */
  if (pthread_create(&mmx_prof_export_thread, 0, mmx_prof_export_loop, 0))
    mmx_prof_export_running = 0;
}

static void mmx_prof_export_stop(void) {
  if (!mmx_prof_export_file) return;
  if (mmx_prof_export_running) {
    __atomic_store_n(&mmx_prof_export_running, 0, __ATOMIC_RELAXED);
    pthread_join(mmx_prof_export_thread, 0);
  }
  mmx_prof_export_line(); /* final deltas since the last tick */
  fclose(mmx_prof_export_file);
  mmx_prof_export_file = 0;
}
#else
static void mmx_prof_export_start(void) {}
static void mmx_prof_export_stop(void) {}
#endif

/* Crash-safe flight recorder (ISSUE 10 pillar 3): $MMX_CRASH_JSON arms
 * SIGSEGV/SIGABRT/SIGFPE/SIGBUS handlers that dump the counter snapshot,
 * the tail of the trace ring, and a raw backtrace using only write(2) and
 * snprintf into stack buffers — no locks, no allocation, no stdio. */
#if defined(__unix__) || defined(__APPLE__)
static char mmx_prof_crash_path[1024];
static volatile sig_atomic_t mmx_prof_crash_busy;

static void mmx_prof_crash_put(int fd, const char* s, long n) {
  while (n > 0) {
    long w = (long)write(fd, s, (size_t)n);
    if (w <= 0) return;
    s += w;
    n -= w;
  }
}

static void mmx_prof_crash_str(int fd, const char* s) {
  mmx_prof_crash_put(fd, s, (long)strlen(s));
}

/* Flattens characters the signal-safe writer cannot escape to '_'. */
static void mmx_prof_crash_name(const char* s, char* out, int cap) {
  int j = 0;
  for (; *s && j < cap - 1; ++s) {
    unsigned char c = (unsigned char)*s;
    out[j++] = (c == '"' || c == '\\' || c < 0x20) ? '_' : (char)c;
  }
  out[j] = 0;
}

static void mmx_prof_crash_kv(int fd, const char* name, const char* suffix,
                              unsigned long long v, int* first) {
  char nb[128];
  char buf[224];
  mmx_prof_crash_name(name, nb, (int)sizeof(nb));
  int n = snprintf(buf, sizeof(buf), "%s    \"%s%s\": %llu",
                   *first ? "\n" : ",\n", nb, suffix, v);
  if (n > 0 && n < (int)sizeof(buf)) mmx_prof_crash_put(fd, buf, n);
  *first = 0;
}

static const char* mmx_prof_crash_signame(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    case SIGBUS: return "SIGBUS";
    default: return "SIG?";
  }
}

static void mmx_prof_crash_handler(int sig) {
  char buf[320];
  int n, first = 1;
  if (mmx_prof_crash_busy) _exit(128 + sig);
  mmx_prof_crash_busy = 1;
  int fd = open(mmx_prof_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    n = snprintf(buf, sizeof(buf),
                 "{\n  \"crash.signal\": %d,\n"
                 "  \"crash.signalName\": \"%s\",\n"
                 "  \"crash.ts_ns\": %llu,\n  \"counters\": {",
                 sig, mmx_prof_crash_signame(sig),
                 (unsigned long long)mmx_prof_raw_ns());
    if (n > 0 && n < (int)sizeof(buf)) mmx_prof_crash_put(fd, buf, n);
    mmx_prof_crash_kv(fd, "rt.alloc.count", "", mmx_prof_allocs, &first);
    mmx_prof_crash_kv(fd, "rt.alloc.bytes", "", mmx_prof_alloc_bytes,
                      &first);
    mmx_prof_crash_kv(fd, "rt.rc.retains", "", mmx_prof_retains, &first);
    mmx_prof_crash_kv(fd, "rt.rc.releases", "", mmx_prof_releases, &first);
    mmx_prof_crash_kv(fd, "kernel.matmul.tiles", "", mmx_prof_mm_tiles,
                      &first);
    for (int i = 0; mmx_prof_sites[i]; ++i) {
      mmx_prof_site* s = mmx_prof_sites[i];
      if (!s->count) continue;
      mmx_prof_crash_kv(fd, s->name, ".count", s->count, &first);
      mmx_prof_crash_kv(fd, s->name, ".ns", s->total_ns, &first);
    }
    {
      const mmx_prof_hist* hs[3] = {&mmx_prof_hist_alloc,
                                    &mmx_prof_hist_matmul,
                                    &mmx_prof_hist_panel};
      for (int i = 0; i < 3; ++i) {
        if (!hs[i]->count) continue;
        mmx_prof_crash_kv(fd, hs[i]->name, ".count", hs[i]->count, &first);
        mmx_prof_crash_kv(fd, hs[i]->name, ".sum", hs[i]->sum, &first);
      }
    }
    mmx_prof_crash_str(fd, "\n  },\n  \"events\": [");
    first = 1;
#ifdef MMX_PROF_WANT_TRACE
    {
      unsigned long long evn =
          __atomic_load_n(&mmx_prof_ev_n, __ATOMIC_RELAXED);
      if (evn > MMX_PROF_MAX_EVENTS) evn = MMX_PROF_MAX_EVENTS;
      unsigned long long k = evn > 64 ? evn - 64 : 0;
      for (; k < evn; ++k) {
        mmx_prof_ev* e = &mmx_prof_evs[k];
        char nb[96], cb[32];
        mmx_prof_crash_name(e->name, nb, (int)sizeof(nb));
        mmx_prof_crash_name(e->cat, cb, (int)sizeof(cb));
        n = snprintf(buf, sizeof(buf),
                     "%s\n    {\"name\": \"%s\", \"cat\": \"%s\", "
                     "\"ts_ns\": %llu, \"dur_ns\": %llu, \"tid\": %d}",
                     first ? "" : ",", nb, cb, e->ts, e->dur, e->tid);
        if (n > 0 && n < (int)sizeof(buf)) mmx_prof_crash_put(fd, buf, n);
        first = 0;
      }
    }
#endif
    mmx_prof_crash_str(fd, "\n  ],\n  \"backtrace\": [");
    first = 1;
#if defined(__GLIBC__)
    {
      void* frames[64];
      int nf = backtrace(frames, 64);
      for (int i = 0; i < nf; ++i) {
        n = snprintf(buf, sizeof(buf), "%s\"%p\"", first ? "" : ", ",
                     frames[i]);
        if (n > 0 && n < (int)sizeof(buf)) mmx_prof_crash_put(fd, buf, n);
        first = 0;
      }
    }
#endif
    mmx_prof_crash_str(fd, "]\n}\n");
    close(fd);
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

static void mmx_prof_crash_install(void) {
  static char mmx_prof_crash_stack[64 * 1024];
  const char* path = getenv("MMX_CRASH_JSON");
  if (!path || !*path) return;
  snprintf(mmx_prof_crash_path, sizeof(mmx_prof_crash_path), "%s", path);
#if defined(__GLIBC__)
  {
    void* prime[2];
    backtrace(prime, 2); /* fault-free libgcc load before any crash */
  }
#endif
  stack_t st;
  st.ss_sp = mmx_prof_crash_stack;
  st.ss_size = sizeof(mmx_prof_crash_stack);
  st.ss_flags = 0;
  sigaltstack(&st, 0);
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = mmx_prof_crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_ONSTACK;
  static const int sigs[4] = {SIGSEGV, SIGABRT, SIGFPE, SIGBUS};
  for (int i = 0; i < 4; ++i) sigaction(sigs[i], &sa, 0);
}
#else
static void mmx_prof_crash_install(void) {}
#endif

/* Deliberate-fault hook for the crash-recorder fixtures, mirroring mmc's
 * $MMX_DEBUG_CRASH. Firing at dump time (atexit) means the crash JSON
 * carries the full counter/span state of the finished program. */
static void mmx_prof_debug_crash(void) {
  const char* mode = getenv("MMX_DEBUG_CRASH");
  if (!mode) return;
  if (!strcmp(mode, "segv")) {
    volatile int* p = 0;
    *p = 42; /* SIGSEGV through the installed flight recorder */
  } else if (!strcmp(mode, "abort")) {
    abort();
  }
}

static void mmx_prof_dump(void) {
  mmx_prof_export_stop();
  mmx_prof_debug_crash();
  const char* path = getenv("MMX_PROF_JSON");
  if (path && *path) {
    FILE* f = fopen(path, "w");
    if (f) {
      fputs("{\n", f);
      fprintf(f, "  \"rt.alloc.count\": %llu,\n", mmx_prof_allocs);
      fprintf(f, "  \"rt.alloc.bytes\": %llu,\n", mmx_prof_alloc_bytes);
      fprintf(f, "  \"rt.alloc.liveBytes\": %llu,\n",
              __atomic_load_n(&mmx_prof_live_bytes, __ATOMIC_RELAXED));
      fprintf(f, "  \"rt.alloc.peakBytes\": %llu,\n", mmx_prof_peak_bytes);
      fprintf(f, "  \"rt.rc.retains\": %llu,\n", mmx_prof_retains);
      fprintf(f, "  \"rt.rc.releases\": %llu,\n", mmx_prof_releases);
      fprintf(f, "  \"kernel.matmul.tiles\": %llu", mmx_prof_mm_tiles);
      if (mmx_backend_name) {
        fprintf(f, ",\n  \"backend.selected.%s\": 1", mmx_backend_name);
        fprintf(f, ",\n  \"kernel.matmul.%s.count\": %llu", mmx_backend_name,
                mmx_prof_site_matmul.count);
        fprintf(f, ",\n  \"kernel.matmul.%s.ns\": %llu", mmx_backend_name,
                mmx_prof_site_matmul.total_ns);
        if (mmx_prof_pmu_state == 1) {
          fprintf(f, ",\n  \"kernel.matmul.%s.pmu.cycles\": %llu",
                  mmx_backend_name, mmx_prof_pmu_vals[0]);
          fprintf(f, ",\n  \"kernel.matmul.%s.pmu.instructions\": %llu",
                  mmx_backend_name, mmx_prof_pmu_vals[1]);
          fprintf(f, ",\n  \"kernel.matmul.%s.pmu.cacheMisses\": %llu",
                  mmx_backend_name, mmx_prof_pmu_vals[2]);
          fprintf(f, ",\n  \"kernel.matmul.%s.pmu.branchMisses\": %llu",
                  mmx_backend_name, mmx_prof_pmu_vals[3]);
        }
      }
      if (mmx_prof_pmu_skips)
        fprintf(f, ",\n  \"pmu.skipped\": %llu", mmx_prof_pmu_skips);
      mmx_prof_dump_hist(f, &mmx_prof_hist_alloc);
      mmx_prof_dump_hist(f, &mmx_prof_hist_matmul);
      mmx_prof_dump_hist(f, &mmx_prof_hist_panel);
#ifdef MMX_PROF_WANT_TRACE
      {
        unsigned long long evn =
            __atomic_load_n(&mmx_prof_ev_n, __ATOMIC_RELAXED);
        if (evn > MMX_PROF_MAX_EVENTS)
          fprintf(f, ",\n  \"trace.droppedEvents\": %llu",
                  evn - MMX_PROF_MAX_EVENTS);
      }
#endif
      for (int t = 0; t < mmx_prof_ntids && t < MMX_PROF_MAX_THREADS; ++t)
        if (mmx_prof_thread_busy[t])
          fprintf(f, ",\n  \"omp.t%d.busy_ns\": %llu", t,
                  mmx_prof_thread_busy[t]);
      for (int i = 0; mmx_prof_sites[i]; ++i) {
        mmx_prof_site* s = mmx_prof_sites[i];
        if (!s->count) continue;
        fputs(",\n  ", f);
        mmx_prof_json_key(f, s->name, ".count");
        fprintf(f, ": %llu,\n  ", s->count);
        mmx_prof_json_key(f, s->name, ".ns");
        fprintf(f, ": %llu,\n  ", s->total_ns);
        mmx_prof_json_key(f, s->name, ".max_ns");
        fprintf(f, ": %llu", s->max_ns);
      }
      fputs("\n}\n", f);
      fclose(f);
    }
  }
#ifdef MMX_PROF_WANT_TRACE
  path = getenv("MMX_PROF_TRACE");
  if (path && *path) {
    FILE* f = fopen(path, "w");
    if (f) {
      fputs("{\"traceEvents\":[", f);
      fputs("\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
            "\"args\":{\"name\":\"mmx runtime\"}}",
            f);
      unsigned long long n =
          __atomic_load_n(&mmx_prof_ev_n, __ATOMIC_RELAXED);
      if (n > MMX_PROF_MAX_EVENTS) n = MMX_PROF_MAX_EVENTS;
      for (unsigned long long k = 0; k < n; ++k) {
        mmx_prof_ev* e = &mmx_prof_evs[k];
        fputs(",\n{\"name\":", f);
        mmx_prof_json_key(f, e->name, "");
        fputs(",\"cat\":", f);
        mmx_prof_json_key(f, e->cat, "");
        fprintf(f,
                ",\"ph\":\"X\",\"ts\":%llu.%03llu,\"dur\":%llu.%03llu,"
                "\"pid\":2,\"tid\":%d}",
                e->ts / 1000, e->ts % 1000, e->dur / 1000, e->dur % 1000,
                e->tid);
      }
      fputs("\n],\"displayTimeUnit\":\"ms\"}\n", f);
      fclose(f);
    }
  }
#endif
}
)PROFDUMP";

/// Removes every line containing an MMX_PROF hook marker. Applied to the
/// prelude/appendix text when instrumentation is off: hooks are planted as
/// whole lines, so stripping them restores the historical output exactly.
std::string stripProfLines(const char* text) {
  std::string out;
  const char* p = text;
  while (*p) {
    const char* nl = strchr(p, '\n');
    size_t len = nl ? static_cast<size_t>(nl - p) + 1 : strlen(p);
    if (std::string_view(p, len).find("MMX_PROF") == std::string_view::npos)
      out.append(p, len);
    p += len;
  }
  return out;
}

int ewOpCode(ArithOp op) {
  switch (op) {
    case ArithOp::Add: return 0;
    case ArithOp::Sub: return 1;
    case ArithOp::Mul:
    case ArithOp::EwMul: return 2;
    case ArithOp::Div: return 3;
    case ArithOp::Mod: return 4;
    case ArithOp::Min: return 5;
    case ArithOp::Max: return 6;
  }
  return 0;
}

int cmpOpCode(CmpKind op) {
  switch (op) {
    case CmpKind::Lt: return 0;
    case CmpKind::Le: return 1;
    case CmpKind::Gt: return 2;
    case CmpKind::Ge: return 3;
    case CmpKind::Eq: return 4;
    case CmpKind::Ne: return 5;
  }
  return 0;
}

std::string cTy(Ty t) {
  switch (t) {
    case Ty::Void: return "void";
    case Ty::I32: return "int";
    case Ty::F32: return "float";
    case Ty::Bool: return "int";
    case Ty::Mat: return "mmx_mat*";
    case Ty::Str: return "const char*";
  }
  return "void";
}

std::string escapeC(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string floatLit(float f) {
  std::ostringstream o;
  o.precision(9);
  o << f;
  std::string s = o.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos)
    s += ".0";
  return s + "f";
}

/// Emits one function.
class FnEmitter {
public:
  FnEmitter(const Function& f, std::vector<std::string>& errors,
            BoundsCheckMode mode = BoundsCheckMode::On,
            const GuardPlan* plan = nullptr,
            InstrumentMode instr = InstrumentMode::Off,
            const SourceManager* sm = nullptr,
            std::vector<std::string>* siteDecls = nullptr,
            int* siteId = nullptr, bool uninitOk = false)
      : f_(f), errors_(errors), mode_(mode), plan_(plan), instr_(instr),
        sm_(sm), siteDecls_(siteDecls), siteId_(siteId),
        uninitOk_(uninitOk) {
    names_.reserve(f.locals.size());
    for (size_t i = 0; i < f.locals.size(); ++i) {
      std::string n;
      for (char c : f.locals[i].name)
        n += (isalnum(static_cast<unsigned char>(c)) ? c : '_');
      if (n.empty() || isdigit(static_cast<unsigned char>(n[0]))) n = "v" + n;
      names_.push_back(n + "_" + std::to_string(i));
    }
  }

  static std::string signature(const Function& f,
                               const std::vector<std::string>* names) {
    std::ostringstream s;
    bool multi = f.rets.size() > 1;
    s << (f.rets.empty() || multi ? "void" : cTy(f.rets[0])) << " xc_"
      << f.name << "(";
    bool first = true;
    for (size_t i = 0; i < f.numParams; ++i) {
      if (!first) s << ", ";
      first = false;
      s << cTy(f.locals[i].ty) << ' '
        << (names ? (*names)[i] : "p" + std::to_string(i));
    }
    if (multi) {
      for (size_t r = 0; r < f.rets.size(); ++r) {
        if (!first) s << ", ";
        first = false;
        s << cTy(f.rets[r]) << "* __out" << r;
      }
    }
    if (first) s << "void";
    s << ")";
    return s.str();
  }

  std::string run() {
    // Borrowed parameters (shapecheck-proven never reassigned): their
    // per-call retain/release pair is elided whenever guard elision is
    // active — the caller's reference outlives the call.
    std::set<int32_t> borrowed;
    if (mode_ != BoundsCheckMode::On && plan_) {
      auto it = plan_->borrowedParams.find(&f_);
      if (it != plan_->borrowedParams.end()) borrowed = it->second;
    }
    body_ << signature(f_, &names_) << " {\n";
    // Local declarations.
    for (size_t i = f_.numParams; i < f_.locals.size(); ++i) {
      Ty t = f_.locals[i].ty;
      if (t == Ty::Void) continue;
      body_ << "  " << cTy(t) << ' ' << names_[i]
            << (t == Ty::Mat ? " = NULL" : t == Ty::Str ? " = \"\"" : " = 0")
            << ";\n";
    }
    if (f_.rets.size() == 1)
      body_ << "  " << cTy(f_.rets[0]) << " __ret"
            << (f_.rets[0] == Ty::Mat ? " = NULL" : " = 0") << ";\n";
    // Own the matrix parameters for the function's duration.
    for (size_t i = 0; i < f_.numParams; ++i)
      if (f_.locals[i].ty == Ty::Mat && !borrowed.count((int32_t)i))
        body_ << "  mmx_retain(" << names_[i] << ");\n";

    indent_ = 1;
    stmt(*f_.body);

    line() << "goto mmx_cleanup;\n";
    body_ << "mmx_cleanup:;\n";
    for (size_t i = 0; i < f_.locals.size(); ++i)
      if (f_.locals[i].ty == Ty::Mat &&
          !(i < f_.numParams && borrowed.count((int32_t)i)))
        body_ << "  mmx_release(" << names_[i] << ");\n";
    if (f_.rets.size() == 1) body_ << "  return __ret;\n";
    body_ << "}\n";
    return body_.str();
  }

private:
  std::ostream& line() {
    for (int i = 0; i < indent_; ++i) body_ << "  ";
    return body_;
  }

  void err(const std::string& m) { errors_.push_back(f_.name + ": " + m); }

  // --- instrumentation sites (ISSUE 5) -----------------------------------
  /// Span label with source attribution: "<kind>@file:line" when the
  /// originating statement has a resolvable location, "<kind>@fnname"
  /// otherwise (e.g. synthesized IR).
  std::string siteLabel(const char* kind) const {
    if (sm_ && curRange_.valid()) {
      auto lc = sm_->lineCol(curRange_.begin);
      return std::string(kind) + "@" + std::string(sm_->name(curRange_.begin.file)) +
             ":" + std::to_string(lc.line);
    }
    return std::string(kind) + "@" + f_.name;
  }

  /// Registers a per-site aggregate struct; returns its C variable name.
  /// Declarations are collected by the caller and emitted before the
  /// function bodies (they are static, taken by address in the hooks).
  std::string newSite(const char* kind, const char* cat) {
    int id = (*siteId_)++;
    std::string var = "mmx_prof_site_" + std::to_string(id);
    siteDecls_->push_back("static mmx_prof_site " + var + " = {\"" +
                          escapeC(siteLabel(kind)) + "\", \"" + cat +
                          "\", 0, 0, 0};");
    return var;
  }

  /// True when the guard at `site` (the IR node's address, the key the
  /// shapecheck pass used) should be dropped from the emitted code.
  bool skip(const void* site) const {
    if (mode_ == BoundsCheckMode::On) return false;
    if (mode_ == BoundsCheckMode::Off) return true;
    return plan_ && plan_->blessed(site);
  }

  // --- scalar/matrix expression emission ---------------------------------
  std::string expr(const Expr& e) {
    switch (e.k) {
      case Expr::K::ConstI: return std::to_string(e.i);
      case Expr::K::ConstF: return floatLit(e.f);
      case Expr::K::ConstB: return e.i ? "1" : "0";
      case Expr::K::ConstS: return "\"" + escapeC(e.s) + "\"";
      case Expr::K::Var: return names_[e.slot];
      case Expr::K::Arith: return arith(e);
      case Expr::K::Cmp: return cmp(e);
      case Expr::K::Logic:
        return "(" + expr(*e.args[0]) +
               (e.lop == LogicOp::And ? " && " : " || ") + expr(*e.args[1]) +
               ")";
      case Expr::K::Not: return "(!" + expr(*e.args[0]) + ")";
      case Expr::K::Neg:
        if (e.ty == Ty::Mat) return matTemp("mmx_negm(" + matVal(*e.args[0]) + ")");
        return "(-" + expr(*e.args[0]) + ")";
      case Expr::K::Cast:
        if (e.ty == Ty::Bool) return "((" + expr(*e.args[0]) + ") != 0)";
        return "((" + std::string(e.ty == Ty::F32 ? "float" : "int") + ")(" +
               expr(*e.args[0]) + "))";
      case Expr::K::Call: return call(e);
      case Expr::K::DimSize:
        if (skip(&e))
          return "((int)" + matVal(*e.args[0]) + "->dims[" +
                 expr(*e.args[1]) + "])";
        return "((int)mmx_dim(" + matVal(*e.args[0]) + ", " +
               expr(*e.args[1]) + "))";
      case Expr::K::LoadFlat: {
        std::string m = matVal(*e.args[0]);
        std::string acc = e.ty == Ty::F32 ? "mmx_f" : e.ty == Ty::Bool
                                                          ? "mmx_b"
                                                          : "mmx_i";
        if (skip(&e))
          return acc + "(" + m + ")[" + expr(*e.args[1]) + "]";
        return acc + "(" + m + ")[mmx_flat(" + m + ", " + expr(*e.args[1]) +
               ")]";
      }
      case Expr::K::RangeLit:
        return matTemp("mmx_range(" + expr(*e.args[0]) + ", " +
                       expr(*e.args[1]) + ")");
      case Expr::K::Index: {
        std::string t = indexExpr(e);
        if (e.ty == Ty::Mat) return t;
        // Scalar result through the selector machinery: one-element matrix.
        std::string acc = e.ty == Ty::F32 ? "mmx_f" : e.ty == Ty::Bool
                                                          ? "mmx_b"
                                                          : "mmx_i";
        return acc + "(" + t + ")[0]";
      }
    }
    err("unsupported expression");
    return "0";
  }

  /// Expression that must be a valid mmx_mat* value (borrowed).
  std::string matVal(const Expr& e) {
    if (e.k == Expr::K::Var) return names_[e.slot];
    return expr(e); // constructor forms route through matTemp
  }

  /// Stores an owned constructor result into a fresh temp slot; returns
  /// the temp's name (borrowed from the temp, released at cleanup).
  std::string matTemp(const std::string& ownedCtor) {
    std::string t = newTemp();
    line() << "mmx_set_owned(&" << t << ", " << ownedCtor << ");\n";
    return t;
  }

  std::string newTemp() {
    std::string t = "__mt" + std::to_string(names_.size() + extra_.size());
    extra_.push_back(t);
    // Declare lazily at top via placeholder: collected in extras, spliced
    // by run()? Simpler: emit declaration right here in a fresh scope is
    // wrong (needs function scope for cleanup) — so declare on first use
    // at function top via a second pass. To keep one pass, temps are
    // declared in a preamble string appended later.
    return t;
  }

  std::string arith(const Expr& e) {
    bool aM = e.args[0]->ty == Ty::Mat, bM = e.args[1]->ty == Ty::Mat;
    if (e.ty == Ty::Mat) {
      if (aM && bM) {
        const char* sfx = skip(&e) ? "_nc" : "";
        if (e.aop == ArithOp::Mul) {
          // Evaluate the operands first so nested constructor statements
          // don't land inside the matmul span.
          std::string a = matVal(*e.args[0]);
          std::string b = matVal(*e.args[1]);
          std::string ctor =
              "mmx_matmul" + std::string(sfx) + "(" + a + ", " + b + ")";
          if (instr_ == InstrumentMode::Off) return matTemp(ctor);
          std::string site = newSite("matmul", "matmul");
          int id = tempId_++;
          line() << "unsigned long long __mmt" << id
                 << " = mmx_prof_now();\n";
          std::string t = matTemp(ctor);
          line() << "mmx_prof_site_hit(&" << site << ", __mmt" << id
                 << ");\n";
          return t;
        }
        return matTemp("mmx_ew" + std::string(sfx) + "(" +
                       std::to_string(ewOpCode(e.aop)) + ", " +
                       matVal(*e.args[0]) + ", " + matVal(*e.args[1]) + ")");
      }
      const Expr& m = aM ? *e.args[0] : *e.args[1];
      const Expr& sc = aM ? *e.args[1] : *e.args[0];
      std::string fn = sc.ty == Ty::F32 ? "mmx_ew_sf" : "mmx_ew_si";
      return matTemp(fn + "(" + std::to_string(ewOpCode(e.aop)) + ", " +
                     matVal(m) + ", " + expr(sc) + ", " + (aM ? "0" : "1") +
                     ")");
    }
    std::string a = expr(*e.args[0]), b = expr(*e.args[1]);
    bool flt = e.ty == Ty::F32;
    switch (e.aop) {
      case ArithOp::Add: return "(" + a + " + " + b + ")";
      case ArithOp::Sub: return "(" + a + " - " + b + ")";
      case ArithOp::Mul:
      case ArithOp::EwMul: return "(" + a + " * " + b + ")";
      case ArithOp::Div:
        return flt ? "(" + a + " / " + b + ")"
                   : "mmx_opi(3, " + a + ", " + b + ")";
      case ArithOp::Mod:
        return flt ? "fmodf(" + a + ", " + b + ")"
                   : "mmx_opi(4, " + a + ", " + b + ")";
      case ArithOp::Min:
        return (flt ? "mmx_min_f(" : "mmx_min_i(") + a + ", " + b + ")";
      case ArithOp::Max:
        return (flt ? "mmx_max_f(" : "mmx_max_i(") + a + ", " + b + ")";
    }
    return "0";
  }

  std::string cmp(const Expr& e) {
    bool aM = e.args[0]->ty == Ty::Mat, bM = e.args[1]->ty == Ty::Mat;
    if (e.ty == Ty::Mat) {
      if (aM && bM)
        return matTemp("mmx_cmp" + std::string(skip(&e) ? "_nc" : "") + "(" +
                       std::to_string(cmpOpCode(e.cop)) + ", " +
                       matVal(*e.args[0]) + ", " + matVal(*e.args[1]) + ")");
      const Expr& m = aM ? *e.args[0] : *e.args[1];
      const Expr& sc = aM ? *e.args[1] : *e.args[0];
      std::string fn = sc.ty == Ty::F32 ? "mmx_cmp_sf" : "mmx_cmp_si";
      return matTemp(fn + "(" + std::to_string(cmpOpCode(e.cop)) + ", " +
                     matVal(m) + ", " + expr(sc) + ", " + (aM ? "0" : "1") +
                     ")");
    }
    return "(" + expr(*e.args[0]) + " " + cmpName(e.cop) + " " +
           expr(*e.args[1]) + ")";
  }

  std::string call(const Expr& e) {
    const std::string& c = e.s;
    auto arg = [&](size_t i) { return expr(*e.args[i]); };
    if (c == "initMatrix") {
      // Genarray results the shapecheck pass proved fully written take the
      // uninitialized-allocation path (memsys builds only; mmx_allocv_u is
      // appended to the appendix exactly when such sites exist). Gated on
      // the plan being active (mode != On) like borrowedParams: a plan
      // must not perturb On-mode output.
      const char* fn = uninitOk_ && mode_ != BoundsCheckMode::On && plan_ &&
                               plan_->fullyWritten.count(&e)
                           ? "mmx_allocv_u("
                           : skip(&e) ? "mmx_allocv_nc(" : "mmx_allocv(";
      std::string s =
          std::string(fn) + arg(0) + ", " + std::to_string(e.args.size() - 1);
      for (size_t i = 1; i < e.args.size(); ++i)
        s += ", (long long)(" + arg(i) + ")";
      s += ")";
      return matTemp(s);
    }
    if (c == "readMatrix") return matTemp("mmx_read(" + arg(0) + ")");
    if (c == "writeMatrix")
      return "mmx_write(" + arg(0) + ", " + matVal(*e.args[1]) + ")";
    if (c == "checkMatrixMeta")
      return matTemp(std::string(skip(&e) ? "mmx_checked_nc(" : "mmx_checked(") +
                     matVal(*e.args[0]) + ", " + arg(1) + ", " + arg(2) + ")");
    if (c == "cloneMatrix")
      return matTemp("mmx_clone(" + matVal(*e.args[0]) + ")");
    if (c == "matToFloat")
      return matTemp("mmx_to_float(" + matVal(*e.args[0]) + ")");
    if (c == "checkGenBounds") {
      if (skip(&e)) // keep the operand evaluation, drop the comparison
        return "((void)(" + arg(0) + "), (void)(" + arg(1) + "))";
      return "mmx_check_gen_bounds(" + arg(0) + ", " + arg(1) + ")";
    }
    if (c == "printInt") return "printf(\"%d\\n\", " + arg(0) + ")";
    if (c == "printFloat") return "printf(\"%g\\n\", (double)" + arg(0) + ")";
    if (c == "printBool")
      return "printf(\"%s\\n\", (" + arg(0) + ") ? \"true\" : \"false\")";
    if (c == "printStr") return "printf(\"%s\\n\", " + arg(0) + ")";
    if (c == "printShape") {
      // Shape printing is diagnostic-only; emit dims then the kind name.
      return "do { mmx_mat* __m = " + matVal(*e.args[0]) +
             "; for (int __d = 0; __d < __m->rank; ++__d) "
             "printf(\"%s%lld\", __d ? \"x\" : \"\", __m->dims[__d]); "
             "printf(\" %s\\n\", __m->elem == 0 ? \"int\" : __m->elem == 1 ? "
             "\"float\" : \"bool\"); } while (0)";
    }
    if (c == "numThreads") return "mmx_num_threads()";
    if (c == "refCount") {
      // Counts can differ from the interpreter by emitter temporaries.
      return "(" + matVal(*e.args[0]) + "->refcount)";
    }
    err("builtin '" + c +
        "' is interpreter-only (simulator-backed); emitted programs should "
        "read data with readMatrix instead");
    return "0";
  }

  std::string indexExpr(const Expr& e) {
    std::string m = matVal(*e.args[0]);
    std::string t = newTemp();
    line() << "{ mmx_sel __s[" << e.dims.size() << "];\n";
    ++indent_;
    emitSelectors(e.dims, m);
    line() << "mmx_set_owned(&" << t << ", mmx_index"
           << (skip(&e) ? "_nc" : "") << "(" << m << ", __s));\n";
    --indent_;
    line() << "}\n";
    return t;
  }

  void emitSelectors(const std::vector<IndexDim>& dims, const std::string&) {
    for (size_t d = 0; d < dims.size(); ++d) {
      std::string sd = "__s[" + std::to_string(d) + "]";
      line() << "memset(&" << sd << ", 0, sizeof(" << sd << "));\n";
      // Sub-expressions may emit temp-assignment lines of their own, so
      // they must be fully evaluated before this selector's line starts.
      switch (dims[d].kind) {
        case IndexDim::Kind::Scalar: {
          std::string a = expr(*dims[d].a);
          line() << sd << ".kind = 0; " << sd << ".a = " << a << ";\n";
          break;
        }
        case IndexDim::Kind::Range: {
          std::string a = expr(*dims[d].a);
          std::string b = expr(*dims[d].b);
          line() << sd << ".kind = 1; " << sd << ".a = " << a << "; " << sd
                 << ".b = " << b << ";\n";
          break;
        }
        case IndexDim::Kind::All:
          line() << sd << ".kind = 2;\n";
          break;
        case IndexDim::Kind::Mask: {
          std::string mv = matVal(*dims[d].a);
          line() << sd << ".kind = 3; " << sd << ".mask = " << mv << ";\n";
          break;
        }
      }
    }
  }

  // --- statements ---------------------------------------------------------
  void stmt(const Stmt& s) {
    if (s.range.valid()) curRange_ = s.range;
    switch (s.k) {
      case Stmt::K::Block:
        for (const auto& k : s.kids)
          if (k) stmt(*k);
        return;
      case Stmt::K::Assign: {
        const Expr& e = *s.exprs[0];
        if (f_.locals[s.slot].ty == Ty::Mat) {
          if (e.k == Expr::K::Var) {
            line() << "mmx_set(&" << names_[s.slot] << ", " << names_[e.slot]
                   << ");\n";
          } else {
            std::string v = expr(e); // routes through a temp slot
            line() << "mmx_set(&" << names_[s.slot] << ", " << v << ");\n";
          }
        } else {
          std::string v = expr(e);
          line() << names_[s.slot] << " = " << v << ";\n";
        }
        return;
      }
      case Stmt::K::StoreFlat: {
        std::string m = names_[s.slot];
        Ty et = s.exprs[1]->ty;
        std::string acc = et == Ty::F32 ? "mmx_f" : et == Ty::Bool
                                                        ? "mmx_b"
                                                        : "mmx_i";
        std::string idx = expr(*s.exprs[0]);
        std::string val = expr(*s.exprs[1]);
        if (skip(&s))
          line() << acc << "(" << m << ")[" << idx << "] = " << val << ";\n";
        else
          line() << acc << "(" << m << ")[mmx_flat(" << m << ", " << idx
                 << ")] = " << val << ";\n";
        return;
      }
      case Stmt::K::IndexStore: {
        std::string m = names_[s.slot];
        line() << "{ mmx_sel __s[" << s.dims.size() << "];\n";
        ++indent_;
        emitSelectors(s.dims, m);
        const Expr& v = *s.exprs[0];
        const char* sfx = skip(&s) ? "_nc" : "";
        if (v.ty == Ty::Mat) {
          line() << "mmx_index_store" << sfx << "(" << m << ", __s, "
                 << matVal(v) << ");\n";
        } else {
          std::string fn = v.ty == Ty::F32 ? "mmx_index_store_f"
                           : v.ty == Ty::Bool ? "mmx_index_store_b"
                                              : "mmx_index_store_i";
          line() << fn << sfx << "(" << m << ", __s, " << expr(v) << ");\n";
        }
        --indent_;
        line() << "}\n";
        return;
      }
      case Stmt::K::For:
        emitFor(s);
        return;
      case Stmt::K::While: {
        line() << "for (;;) {\n";
        ++indent_;
        std::string cond = expr(*s.exprs[0]);
        line() << "if (!(" << cond << ")) break;\n";
        stmt(*s.kids[0]);
        --indent_;
        line() << "}\n";
        return;
      }
      case Stmt::K::If: {
        std::string cond = expr(*s.exprs[0]);
        line() << "if (" << cond << ") {\n";
        ++indent_;
        stmt(*s.kids[0]);
        --indent_;
        line() << "}";
        if (s.kids.size() > 1 && s.kids[1]) {
          body_ << " else {\n";
          ++indent_;
          stmt(*s.kids[1]);
          --indent_;
          line() << "}";
        }
        body_ << "\n";
        return;
      }
      case Stmt::K::Ret: {
        if (f_.rets.size() == 1) {
          if (f_.rets[0] == Ty::Mat)
            line() << "mmx_set(&__ret, " << matVal(*s.exprs[0]) << ");\n";
          else
            line() << "__ret = " << expr(*s.exprs[0]) << ";\n";
        } else if (f_.rets.size() > 1) {
          for (size_t r = 0; r < s.exprs.size(); ++r) {
            if (f_.rets[r] == Ty::Mat) {
              std::string v = matVal(*s.exprs[r]);
              line() << "mmx_retain(" << v << "); *__out" << r << " = " << v
                     << ";\n";
            } else {
              line() << "*__out" << r << " = " << expr(*s.exprs[r]) << ";\n";
            }
          }
        }
        line() << "goto mmx_cleanup;\n";
        return;
      }
      case Stmt::K::CallStmt: {
        std::string c = expr(*s.exprs[0]);
        line() << c << ";\n";
        return;
      }
      case Stmt::K::CallAssign:
        emitCallAssign(s);
        return;
      case Stmt::K::Break:
        line() << "break;\n";
        return;
      case Stmt::K::Continue:
        line() << "continue;\n";
        return;
    }
  }

  void emitCallAssign(const Stmt& s) {
    std::ostringstream args;
    for (size_t i = 0; i < s.exprs.size(); ++i) {
      if (i) args << ", ";
      args << (s.exprs[i]->ty == Ty::Mat ? matVal(*s.exprs[i])
                                         : expr(*s.exprs[i]));
    }
    if (s.dsts.empty()) {
      line() << "xc_" << s.callee << "(" << args.str() << ");\n";
      return;
    }
    if (s.dsts.size() == 1) {
      if (f_.locals[s.dsts[0]].ty == Ty::Mat)
        line() << "mmx_set_owned(&" << names_[s.dsts[0]] << ", xc_"
               << s.callee << "(" << args.str() << "));\n";
      else
        line() << names_[s.dsts[0]] << " = xc_" << s.callee << "("
               << args.str() << ");\n";
      return;
    }
    // Multi-value call: receive into locals, then move into slots.
    line() << "{\n";
    ++indent_;
    for (size_t r = 0; r < s.dsts.size(); ++r) {
      Ty t = f_.locals[s.dsts[r]].ty;
      line() << cTy(t) << " __r" << r << (t == Ty::Mat ? " = NULL" : " = 0")
             << ";\n";
    }
    line() << "xc_" << s.callee << "(" << args.str();
    for (size_t r = 0; r < s.dsts.size(); ++r) body_ << ", &__r" << r;
    body_ << ");\n";
    for (size_t r = 0; r < s.dsts.size(); ++r) {
      if (f_.locals[s.dsts[r]].ty == Ty::Mat)
        line() << "mmx_set_owned(&" << names_[s.dsts[r]] << ", __r" << r
               << ");\n";
      else
        line() << names_[s.dsts[r]] << " = __r" << r << ";\n";
    }
    --indent_;
    line() << "}\n";
  }

  // --- loops -----------------------------------------------------------
  void collectAssigned(const Stmt& s, std::set<int32_t>& out) const {
    switch (s.k) {
      case Stmt::K::Assign: out.insert(s.slot); break;
      case Stmt::K::CallAssign:
        for (int32_t d : s.dsts) out.insert(d);
        break;
      case Stmt::K::For: out.insert(s.slot); break;
      default: break;
    }
    for (const auto& k : s.kids)
      if (k) collectAssigned(*k, out);
  }

  /// Slots written by plain Assign only — inner serial loop variables stay
  /// scalar inside vectorized regions (the interpreter does the same).
  void collectVecAssigned(const Stmt& s, std::set<int32_t>& out) const {
    if (s.k == Stmt::K::Assign) out.insert(s.slot);
    for (const auto& k : s.kids)
      if (k) collectVecAssigned(*k, out);
  }

  void emitFor(const Stmt& s) {
    if (s.parallel) {
      emitParallelFor(s);
      return;
    }
    if (s.vecWidth == 4) {
      emitVectorFor(s);
      return;
    }
    std::string lo = expr(*s.exprs[0]);
    std::string hi = expr(*s.exprs[1]);
    std::string v = names_[s.slot];
    std::string hiv = "__h" + std::to_string(tempId_++);
    line() << "{ int " << hiv << " = " << hi << ";\n";
    ++indent_;
    line() << "for (" << v << " = " << lo << "; " << v << " < " << hiv
           << "; " << v << "++) {\n";
    ++indent_;
    stmt(*s.kids[0]);
    --indent_;
    line() << "}\n";
    --indent_;
    line() << "}\n";
  }

  void emitParallelFor(const Stmt& s) {
    std::set<int32_t> assigned;
    assigned.insert(s.slot);
    collectAssigned(*s.kids[0], assigned);

    // One span per dynamic execution of the with-loop, attributed to its
    // source line — the region the paper parallelizes is the unit a
    // profile needs to rank.
    std::string site;
    int siteTmp = 0;
    if (instr_ != InstrumentMode::Off) {
      site = newSite("with-loop", "withloop");
      siteTmp = tempId_++;
      line() << "{ unsigned long long __pf" << siteTmp
             << " = mmx_prof_now();\n";
      ++indent_;
    }

    std::string lo = expr(*s.exprs[0]);
    std::string hi = expr(*s.exprs[1]);
    line() << "{ long long __plo = " << lo << ", __phi = " << hi << ";\n";
    ++indent_;
    line() << "#pragma omp parallel for\n";
    line() << "for (long long __t = __plo; __t < __phi; __t++) {\n";
    ++indent_;
    // Per-iteration shadows of everything the body assigns: private by
    // construction, with or without OpenMP.
    for (int32_t slot : assigned) {
      Ty t = f_.locals[slot].ty;
      if (slot == s.slot) {
        line() << "int " << names_[slot] << " = (int)__t;\n";
      } else {
        line() << cTy(t) << ' ' << names_[slot]
               << (t == Ty::Mat ? " = NULL" : " = 0") << ";\n";
      }
    }
    stmt(*s.kids[0]);
    for (int32_t slot : assigned)
      if (f_.locals[slot].ty == Ty::Mat)
        line() << "mmx_release(" << names_[slot] << ");\n";
    --indent_;
    line() << "}\n";
    --indent_;
    line() << "}\n";
    if (!site.empty()) {
      line() << "mmx_prof_site_hit(&" << site << ", __pf" << siteTmp
             << ");\n";
      --indent_;
      line() << "}\n";
    }
  }

  // --- vectorized loops (SSE, Fig. 11) -----------------------------------
  void emitVectorFor(const Stmt& s) {
    std::string lo = expr(*s.exprs[0]);
    std::string hi = expr(*s.exprs[1]);
    std::string v = names_[s.slot];

    vecAssigned_.clear();
    std::set<int32_t> assigned;
    collectVecAssigned(*s.kids[0], assigned);

    line() << "{ long long __vl = " << lo << ", __vh = " << hi
           << "; long long __vi = __vl;\n";
    ++indent_;
    line() << "for (; __vi + 4 <= __vh; __vi += 4) {\n";
    ++indent_;
    line() << "__m128i __vx = _mm_add_epi32(_mm_set1_epi32((int)__vi), "
              "_mm_setr_epi32(0, 1, 2, 3));\n";
    vecVar_ = s.slot;
    for (int32_t slot : assigned) {
      if (slot == s.slot) continue;
      Ty t = f_.locals[slot].ty;
      if (t == Ty::F32)
        line() << "__m128 __v_" << names_[slot] << " = _mm_setzero_ps();\n";
      else if (t == Ty::I32)
        line() << "__m128i __v_" << names_[slot]
               << " = _mm_setzero_si128();\n";
      else {
        err("vectorized loop assigns non-arithmetic local '" +
            f_.locals[slot].name + "'");
      }
      vecAssigned_.insert(slot);
    }
    vecStmt(*s.kids[0]);
    vecVar_ = -1;
    vecAssigned_.clear();
    --indent_;
    line() << "}\n";
    // Scalar remainder.
    line() << "for (; __vi < __vh; __vi++) {\n";
    ++indent_;
    line() << v << " = (int)__vi;\n";
    stmt(*s.kids[0]);
    --indent_;
    line() << "}\n";
    --indent_;
    line() << "}\n";
  }

  void vecStmt(const Stmt& s) {
    switch (s.k) {
      case Stmt::K::Block:
        for (const auto& k : s.kids)
          if (k) vecStmt(*k);
        return;
      case Stmt::K::Assign:
        line() << "__v_" << names_[s.slot] << " = " << vecExpr(*s.exprs[0])
               << ";\n";
        return;
      case Stmt::K::For: {
        // Serial inner loop; bounds must be lane-invariant.
        std::string lo = vecLane0Int(*s.exprs[0]);
        std::string hi = vecLane0Int(*s.exprs[1]);
        std::string v = names_[s.slot];
        std::string hiv = "__h" + std::to_string(tempId_++);
        line() << "{ int " << hiv << " = " << hi << ";\n";
        ++indent_;
        line() << "for (" << v << " = " << lo << "; " << v << " < " << hiv
               << "; " << v << "++) {\n";
        ++indent_;
        vecStmt(*s.kids[0]);
        --indent_;
        line() << "}\n";
        --indent_;
        line() << "}\n";
        return;
      }
      case Stmt::K::StoreFlat: {
        std::string m = names_[s.slot];
        std::string ix = vecExprI(*s.exprs[0]);
        Ty et = s.exprs[1]->ty;
        if (et == Ty::F32)
          line() << "mmx_vscatter_f(mmx_f(" << m << "), " << ix << ", "
                 << vecExprF(*s.exprs[1]) << ");\n";
        else
          line() << "mmx_vscatter_i(mmx_i(" << m << "), " << ix << ", "
                 << vecExprI(*s.exprs[1]) << ");\n";
        return;
      }
      default:
        err("statement inside a vectorized loop is not vectorizable");
    }
  }

  /// Lane-0 scalar value of an int expression inside a vector region.
  std::string vecLane0Int(const Expr& e) {
    if (e.k == Expr::K::Var && !vecAssigned_.count(e.slot) &&
        e.slot != vecVar_)
      return names_[e.slot];
    return "_mm_cvtsi128_si32(" + vecExprI(e) + ")";
  }

  std::string vecExpr(const Expr& e) {
    return e.ty == Ty::F32 ? vecExprF(e) : vecExprI(e);
  }

  std::string vecExprF(const Expr& e) {
    switch (e.k) {
      case Expr::K::ConstF: return "_mm_set1_ps(" + floatLit(e.f) + ")";
      case Expr::K::ConstI:
        return "_mm_set1_ps((float)" + std::to_string(e.i) + ")";
      case Expr::K::Var:
        if (vecAssigned_.count(e.slot)) return "__v_" + names_[e.slot];
        if (e.slot == vecVar_) return "_mm_cvtepi32_ps(__vx)";
        return "_mm_set1_ps(" + names_[e.slot] + ")";
      case Expr::K::Arith: {
        std::string a = vecExprF(*e.args[0]);
        std::string b = vecExprF(*e.args[1]);
        switch (e.aop) {
          case ArithOp::Add: return "_mm_add_ps(" + a + ", " + b + ")";
          case ArithOp::Sub: return "_mm_sub_ps(" + a + ", " + b + ")";
          case ArithOp::Mul:
          case ArithOp::EwMul: return "_mm_mul_ps(" + a + ", " + b + ")";
          case ArithOp::Div: return "_mm_div_ps(" + a + ", " + b + ")";
          case ArithOp::Min: return "_mm_min_ps(" + a + ", " + b + ")";
          case ArithOp::Max: return "_mm_max_ps(" + a + ", " + b + ")";
          case ArithOp::Mod: break;
        }
        err("operator has no SSE form in a vectorized loop");
        return "_mm_setzero_ps()";
      }
      case Expr::K::Neg:
        return "_mm_sub_ps(_mm_setzero_ps(), " + vecExprF(*e.args[0]) + ")";
      case Expr::K::Cast:
        return "_mm_cvtepi32_ps(" + vecExprI(*e.args[0]) + ")";
      case Expr::K::LoadFlat:
        return "mmx_vgather_f(mmx_f(" + names_[e.args[0]->slot] + "), " +
               vecExprI(*e.args[1]) + ")";
      default:
        err("expression is not vectorizable");
        return "_mm_setzero_ps()";
    }
  }

  std::string vecExprI(const Expr& e) {
    switch (e.k) {
      case Expr::K::ConstI:
        return "_mm_set1_epi32(" + std::to_string(e.i) + ")";
      case Expr::K::Var:
        if (e.slot == vecVar_) return "__vx";
        if (vecAssigned_.count(e.slot)) return "__v_" + names_[e.slot];
        return "_mm_set1_epi32(" + names_[e.slot] + ")";
      case Expr::K::Arith: {
        std::string a = vecExprI(*e.args[0]);
        std::string b = vecExprI(*e.args[1]);
        switch (e.aop) {
          case ArithOp::Add: return "_mm_add_epi32(" + a + ", " + b + ")";
          case ArithOp::Sub: return "_mm_sub_epi32(" + a + ", " + b + ")";
          case ArithOp::Mul:
          case ArithOp::EwMul: return "_mm_mullo_epi32(" + a + ", " + b + ")";
          default: break;
        }
        err("integer operator has no SSE form in a vectorized loop");
        return "_mm_setzero_si128()";
      }
      case Expr::K::Neg:
        return "_mm_sub_epi32(_mm_setzero_si128(), " +
               vecExprI(*e.args[0]) + ")";
      case Expr::K::Cast:
        return "_mm_cvttps_epi32(" + vecExprF(*e.args[0]) + ")";
      case Expr::K::DimSize:
        return "_mm_set1_epi32((int)mmx_dim(" + names_[e.args[0]->slot] +
               ", " + std::to_string(e.args[1]->i) + "))";
      case Expr::K::LoadFlat:
        return "mmx_vgather_i(mmx_i(" + names_[e.args[0]->slot] + "), " +
               vecExprI(*e.args[1]) + ")";
      default:
        err("expression is not vectorizable");
        return "_mm_setzero_si128()";
    }
  }

public:
  /// Extra matrix temporaries created while emitting; declared by the
  /// caller at function scope (before the body) and released at cleanup.
  const std::vector<std::string>& extraTemps() const { return extra_; }

private:
  const Function& f_;
  std::vector<std::string>& errors_;
  BoundsCheckMode mode_ = BoundsCheckMode::On;
  const GuardPlan* plan_ = nullptr;
  InstrumentMode instr_ = InstrumentMode::Off;
  const SourceManager* sm_ = nullptr;
  std::vector<std::string>* siteDecls_ = nullptr;
  int* siteId_ = nullptr;
  bool uninitOk_ = false; // memsys present: fullyWritten sites → mmx_allocv_u
  SourceRange curRange_; // source range of the statement being emitted
  std::ostringstream body_;
  std::vector<std::string> names_;
  std::vector<std::string> extra_;
  int indent_ = 0;
  int tempId_ = 0;
  int32_t vecVar_ = -1;
  std::set<int32_t> vecAssigned_;
};

} // namespace

CEmitResult emitC(const Module& m) { return emitC(m, CEmitOptions{}); }

CEmitResult emitC(const Module& m, const CEmitOptions& opts) {
  CEmitResult res;
  const bool instr = opts.instrument != InstrumentMode::Off;
  // "system" keeps the historical calloc/free prelude byte-for-byte; any
  // other selection splices the mmx_ms_* thread-caching runtime in.
  const bool useMs = opts.alloc != "system";
  const bool wantUninit = useMs &&
                          opts.boundsChecks != BoundsCheckMode::On &&
                          opts.plan && !opts.plan->fullyWritten.empty();
  std::ostringstream out;
  // Pin the kernel backend the emitted program selects at startup. Under
  // "auto" (the default) nothing is emitted — the prelude's #ifndef
  // fallback keeps the runtime $MMX_BACKEND lookup — so the default
  // output is byte-identical across --backend=auto invocations.
  if (opts.backend != "auto" && !opts.backend.empty()) {
    bool safe = true;
    for (char c : opts.backend)
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '-'))
        safe = false;
    if (!safe) {
      res.errors.push_back("invalid backend name '" + opts.backend + "'");
      return res;
    }
    out << "#define MMX_BACKEND_DEFAULT \"" << opts.backend << "\"\n";
  }
  // Same for the matrix allocator: an explicit non-system name is baked in
  // as MMX_ALLOC_DEFAULT; "auto" leaves the runtime $MMX_ALLOC lookup.
  if (useMs && opts.alloc != "auto" && !opts.alloc.empty()) {
    bool safe = true;
    for (char c : opts.alloc)
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '-'))
        safe = false;
    if (!safe) {
      res.errors.push_back("invalid allocator name '" + opts.alloc + "'");
      return res;
    }
    out << "#define MMX_ALLOC_DEFAULT \"" << opts.alloc << "\"\n";
  }
  // Prelude/appendix text is assembled into strings first so the memsys
  // splices can rewrite the allocation sites; --alloc=system skips every
  // splice, keeping those strings (and so the output) byte-identical to
  // the historical emitter.
  std::string prelude =
      instr ? std::string(kPrelude) : stripProfLines(kPrelude);
  std::string appendix =
      instr ? std::string(kAppendix) : stripProfLines(kAppendix);
  std::string ncAppendix;
  if (opts.boundsChecks != BoundsCheckMode::On)
    ncAppendix = instr ? std::string(kNcAppendix) : stripProfLines(kNcAppendix);
  if (useMs) {
    bool spliced =
        replaceOnce(prelude, kMsEsizeLine,
                    std::string(kMsEsizeLine) + kMsRuntime) &&
        replaceOnce(prelude, kMsCallocLines, kMsAllocLines) &&
        replaceOnce(prelude, "    free(m);\n", "    mmx_ms_free(m);\n") &&
        (ncAppendix.empty() ||
         replaceOnce(ncAppendix, kMsCallocLines, kMsAllocLines));
    if (!spliced) {
      res.errors.push_back(
          "internal: memsys splice anchor missing from the C prelude");
      return res;
    }
    if (wantUninit)
      appendix += instr ? std::string(kMsUninit) : stripProfLines(kMsUninit);
  }
  if (instr) {
    // The prof runtime precedes the prelude: its MMX_PROF_* macros expand
    // the hook lines the prelude carries. When instrumentation is off
    // those hook lines are stripped instead, so the default output is
    // byte-identical to the uninstrumented emitter.
    if (opts.instrument == InstrumentMode::Trace)
      out << "#define MMX_PROF_WANT_TRACE 1\n";
    out << kProfRuntime;
  }
  out << prelude << appendix << ncAppendix;
  out << "\n/* ---- forward declarations ---- */\n";
  for (const auto& f : m.functions)
    out << FnEmitter::signature(*f, nullptr) << ";\n";
  out << "\n";

  // Bodies build into a side stream so the per-site aggregate structs they
  // reference can be declared first.
  std::vector<std::string> siteDecls;
  int siteId = 0;
  std::ostringstream bodies;
  for (const auto& f : m.functions) {
    FnEmitter fe(*f, res.errors, opts.boundsChecks, opts.plan.get(),
                 opts.instrument, opts.sourceManager.get(),
                 instr ? &siteDecls : nullptr, instr ? &siteId : nullptr,
                 useMs);
    std::string body = fe.run();
    // Splice the extra temp declarations after the opening brace, and
    // their releases before the cleanup label's releases.
    const auto& temps = fe.extraTemps();
    if (!temps.empty()) {
      std::string decls;
      for (const auto& t : temps) decls += "  mmx_mat* " + t + " = NULL;\n";
      size_t brace = body.find("{\n");
      body.insert(brace + 2, decls);
      std::string rels;
      for (const auto& t : temps) rels += "  mmx_release(" + t + ");\n";
      size_t cleanup = body.find("mmx_cleanup:;\n");
      body.insert(cleanup + std::string("mmx_cleanup:;\n").size(), rels);
    }
    bodies << body << "\n";
  }

  if (instr) {
    out << "/* ---- mmx_prof: codegen spans ---- */\n";
    for (const auto& d : siteDecls) out << d << "\n";
    out << "\n";
  }
  out << bodies.str();

  if (instr) {
    // Null-terminated site table the dump walks; the builtin matmul
    // kernel site leads so it sorts first in the stats object.
    out << "static mmx_prof_site* mmx_prof_sites[] = {\n"
        << "    &mmx_prof_site_matmul,\n";
    for (int i = 0; i < siteId; ++i)
      out << "    &mmx_prof_site_" << i << ",\n";
    std::string profDump = kProfDump;
    if (useMs &&
        !replaceOnce(profDump, kMsDumpAnchor,
                     std::string(kMsDumpAnchor) + kMsDumpLines)) {
      res.errors.push_back(
          "internal: memsys splice anchor missing from the prof dump");
      return res;
    }
    out << "    0,\n};\n" << profDump << "\n";
  }

  out << "int main(void) {\n";
  out << "  mmx_backend_select();\n";
  // Resolve the allocator eagerly too, so an unknown $MMX_ALLOC fails at
  // startup (exit 3) rather than at the first allocation.
  if (useMs) out << "  mmx_ms_select();\n";
  if (instr)
    out << "  mmx_prof_t0 = mmx_prof_raw_ns();\n"
        << "  mmx_prof_crash_install();\n"
        << "  mmx_prof_export_start();\n"
        << "  atexit(mmx_prof_dump);\n";
  const Function* mainFn = m.find("main");
  if (mainFn && mainFn->rets.size() == 1 && mainFn->rets[0] == Ty::I32)
    out << "  return xc_main();\n";
  else
    out << "  xc_main();\n  return 0;\n";
  out << "}\n";

  res.ok = res.errors.empty();
  res.code = out.str();
  return res;
}

} // namespace mmx::ir
