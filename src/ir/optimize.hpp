// The opt-in whole-program optimizer (ISSUE 6): with-loop fusion,
// whole-matrix temporary elimination, and copy-then-mutate -> in-place
// rewriting over the lowered IR, driven by the interprocedural uniqueness
// and liveness facts in analysis/{uniqueness,liveness}.hpp.
//
// The pipeline is OFF by default: `mmc -O0` (the default) never calls a
// rewrite, so emitted C stays byte-identical to the unoptimized pipeline.
// `mmc -O1` enables all passes; `--opt=fuse,elim-temp,inplace` picks them
// individually. Both backends consume the same rewritten module, so the
// interp-vs-emitted-C agreement oracle validates every rewrite.
//
// Every rewrite is counted in the metrics registry:
//   opt.fusion.fused      producer/consumer nests merged
//   opt.temps.eliminated  whole-matrix allocations removed
//   opt.inplace.converted nests redirected to write their target directly
//   opt.alias.blocked     in-place candidates rejected only because
//                         uniqueness could not prove the target unshared
#pragma once

#include <cstdint>

#include "ir/ir.hpp"

namespace mmx::ir {

struct OptOptions {
  bool fuse = false;     // producer/consumer with-loop fusion
  bool elimTemp = false; // dead whole-matrix temporary elimination
  bool inplace = false;  // write with-loop results into their target
  bool autopar = false;  // promote provably dependence-free loops to parallel

  bool any() const { return fuse || elimTemp || inplace || autopar; }

  static OptOptions none() { return {}; }
  static OptOptions o1() {
    OptOptions o;
    o.fuse = o.elimTemp = o.inplace = o.autopar = true;
    return o;
  }
};

struct OptStats {
  uint64_t fused = 0;
  uint64_t tempsEliminated = 0;
  uint64_t inplaceConverted = 0;
  uint64_t aliasBlocked = 0;
  uint64_t autoparPromoted = 0; // serial loops proven independent -> parallel
  uint64_t autoparBlocked = 0;  // candidates rejected (deps / IO / scalars)
};

/// Runs the enabled passes over every function of `m` (fuse -> inplace ->
/// elim-temp) and bumps the opt.* counters. Always call it, even at -O0:
/// with no pass enabled it registers the counters (so analyze-only runs
/// report a fully populated registry) and returns without touching the IR.
OptStats optimizeModule(Module& m, const OptOptions& opts);

} // namespace mmx::ir
