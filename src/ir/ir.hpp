// The loop-level intermediate representation — the "plain C" the paper's
// extensions translate down to. With-loops expand into annotated for-loop
// nests here (Fig. 3); the §V transformation extension rewrites these
// loops (split/vectorize/parallelize/reorder/tile); the C emitter prints
// them as parallel C (Figs. 10-11) and the interpreter executes them on
// the matrix runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/source.hpp"

namespace mmx::ir {

/// Scalar and aggregate types of the lowered language.
enum class Ty : uint8_t { Void, I32, F32, Bool, Mat, Str };

const char* tyName(Ty t);

/// Arithmetic operators (element-wise over matrices when an operand is a
/// matrix; '*' on two matrices is linear-algebra matmul, '.*' lowers to
/// EwMul).
enum class ArithOp : uint8_t { Add, Sub, Mul, EwMul, Div, Mod, Min, Max };
/// Comparisons (produce Bool, or a Bool matrix when an operand is a matrix).
enum class CmpKind : uint8_t { Lt, Le, Gt, Ge, Eq, Ne };
/// Short-circuit logical ops on scalars.
enum class LogicOp : uint8_t { And, Or };

const char* arithName(ArithOp);
const char* cmpName(CmpKind);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One dimension of a MATLAB-style index (paper §III-A3).
struct IndexDim {
  enum class Kind : uint8_t { Scalar, Range, All, Mask };
  Kind kind = Kind::Scalar;
  ExprPtr a; // Scalar: the index; Range: lower bound; Mask: bool matrix
  ExprPtr b; // Range: upper bound (inclusive, per the paper)
};

/// Expression node. `ty` is the checked result type.
struct Expr {
  enum class K : uint8_t {
    ConstI, ConstF, ConstB, ConstS,
    Var,        // local slot
    Arith,      // args[0] op args[1]
    Cmp,        // args[0] cmp args[1]
    Logic,      // args[0] &&/|| args[1] (scalars, short-circuit)
    Not,        // !args[0]
    Neg,        // -args[0]
    Cast,       // (ty) args[0]  (i32 <-> f32)
    Call,       // builtin: callee(args...) — see interp/builtins
    Index,      // args[0] = matrix; dims = per-dimension selectors
    RangeLit,   // (a :: b) inclusive 1-D i32 matrix; args[0..1]
    DimSize,    // dimSize(args[0], args[1])
    LoadFlat,   // low-level: element args[1] of matrix args[0] (row-major)
  };

  K k;
  Ty ty = Ty::Void;
  int32_t slot = -1;      // Var
  int32_t i = 0;          // ConstI / ConstB(0|1)
  float f = 0.f;          // ConstF
  std::string s;          // ConstS / Call callee
  ArithOp aop{};
  CmpKind cop{};
  LogicOp lop{};
  std::vector<ExprPtr> args;
  std::vector<IndexDim> dims; // Index
};

ExprPtr constI(int32_t v);
ExprPtr constF(float v);
ExprPtr constB(bool v);
ExprPtr constS(std::string v);
ExprPtr var(int32_t slot, Ty ty);
ExprPtr arith(ArithOp op, ExprPtr a, ExprPtr b, Ty ty);
ExprPtr cmp(CmpKind op, ExprPtr a, ExprPtr b, Ty ty = Ty::Bool);
ExprPtr logic(LogicOp op, ExprPtr a, ExprPtr b);
ExprPtr notE(ExprPtr a);
ExprPtr negE(ExprPtr a, Ty ty);
ExprPtr cast(Ty to, ExprPtr a);
ExprPtr call(std::string callee, std::vector<ExprPtr> args, Ty ty);
ExprPtr loadFlat(ExprPtr mat, ExprPtr flat, Ty elemTy);
ExprPtr dimSize(ExprPtr mat, ExprPtr d);

/// Deep copy (the transformation extension rewrites loop bodies).
ExprPtr cloneExpr(const Expr& e);

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node.
struct Stmt {
  enum class K : uint8_t {
    Block,      // kids
    Assign,     // locals[slot] = expr0
    IndexStore, // target matrix in locals[slot], dims selectors, expr0 value
    StoreFlat,  // low-level: locals[slot] matrix, expr0 = flat idx, expr1 = value
    For,        // for (slot = expr0; slot < expr1; slot += 1) kids[0]
    While,      // while (expr0) kids[0]
    If,         // if (expr0) kids[0] else kids[1] (kids[1] may be null)
    Ret,        // return exprs (0, 1, or a tuple's worth)
    CallStmt,   // expr0 is a void builtin call (e.g. writeMatrix)
    CallAssign, // locals[dsts...] = callee(exprs...)  (user functions)
    Break, Continue,
  };

  K k;
  int32_t slot = -1;           // Assign / IndexStore / StoreFlat / For var
  std::vector<ExprPtr> exprs;
  std::vector<StmtPtr> kids;
  std::vector<IndexDim> dims;  // IndexStore
  std::vector<int32_t> dsts;   // CallAssign
  std::string callee;          // CallAssign

  /// Source statement this IR statement was lowered from (stamped by the
  /// Sema emit path; invalid for synthesized glue). Analyses report their
  /// findings against this range.
  SourceRange range;

  // --- loop annotations (For only) ------------------------------------
  /// Who asked for `parallel`: the §III-C auto-parallelizer, an explicit
  /// §V `parallelize` clause, or the `-O1` autopar pass after proving the
  /// loop dependence-free. The parallel-safety pass demotes unsafe `Auto`
  /// loops silently, diagnoses unsafe `Explicit` ones, and trusts `Proven`
  /// promotions (its coarser read/write matching would demote them).
  enum class Par : uint8_t { None, Auto, Explicit, Proven };

  bool parallel = false; // run iterations on the fork-join pool
  Par parSrc = Par::None;
  int vecWidth = 1;      // 4 => SSE-vectorized (paper §V)
  std::string loopName;  // source index name; transform clauses target this
};

StmtPtr block(std::vector<StmtPtr> kids);
StmtPtr assign(int32_t slot, ExprPtr e);
StmtPtr storeFlat(int32_t matSlot, ExprPtr flat, ExprPtr value);
StmtPtr forLoop(int32_t slot, ExprPtr lo, ExprPtr hi, StmtPtr body,
                std::string name);
StmtPtr whileLoop(ExprPtr cond, StmtPtr body);
StmtPtr ifStmt(ExprPtr cond, StmtPtr thenS, StmtPtr elseS);
StmtPtr ret(std::vector<ExprPtr> vals);
StmtPtr callStmt(ExprPtr callExpr);
StmtPtr callAssign(std::vector<int32_t> dsts, std::string callee,
                   std::vector<ExprPtr> args);

StmtPtr cloneStmt(const Stmt& s);

/// A local variable (parameters are the first `params` locals).
struct Local {
  std::string name;
  Ty ty = Ty::Void;
  /// Declared matrix metadata for Mat-typed slots, stamped from the static
  /// type during lowering; -1 = unknown (MatrixAny) or not a matrix.
  /// matElem uses the rt::Elem encoding (0 = int, 1 = float, 2 = bool).
  int32_t matRank = -1;
  int32_t matElem = -1;
};

/// A lowered function. Multiple return types model tuple returns.
struct Function {
  std::string name;
  size_t numParams = 0;
  std::vector<Ty> rets;
  std::vector<Local> locals;
  StmtPtr body;

  /// Adds a local and returns its slot.
  int32_t addLocal(std::string name, Ty ty) {
    locals.push_back({std::move(name), ty});
    return static_cast<int32_t>(locals.size() - 1);
  }
};

/// A lowered program.
struct Module {
  std::vector<std::unique_ptr<Function>> functions;

  Function* find(const std::string& name) const;
  Function* add(std::string name);
};

/// Renders the IR as readable pseudo-C (tests assert on loop structure;
/// this is not the compilable emitter — see cemit.hpp).
std::string dump(const Module& m);
std::string dump(const Function& f);

} // namespace mmx::ir
