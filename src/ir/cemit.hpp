// C emitter: prints a lowered module as one self-contained C file — the
// "plain (parallel) C code" the paper's translator produces for an
// ordinary C compiler. Parallel loops become `#pragma omp parallel for`
// with explicit privatization (Fig. 11); vectorized loops become SSE
// intrinsics over 4 x f32 / 4 x i32 lanes; matrices are refcounted structs
// managed by an emitted prelude (the §III-B cells, rendered in C).
//
// Builtin coverage: everything a file-driven program needs (readMatrix /
// writeMatrix / initMatrix / dimSize / print* / checkGenBounds /
// cloneMatrix / matToFloat / min / max / numThreads). Simulator-backed
// builtins (synthSsh, connComp, detectEddies) are interpreter-only;
// emitting a program that uses them is reported as an error.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/guards.hpp"
#include "ir/ir.hpp"

namespace mmx::ir {

struct CEmitResult {
  bool ok = false;
  std::string code;                 // valid when ok
  std::vector<std::string> errors;  // unsupported constructs
};

/// Bounds-check emission policy (ISSUE 3). `On` emits every runtime guard
/// (the historical output, byte-for-byte). `Off` lowers every guarded
/// operation to its unchecked form. `Auto` consults the shapecheck
/// GuardPlan: sites the analysis proved safe use the unchecked form,
/// everything else keeps its guard. Under Auto the plan's borrowed
/// parameters also drop their per-call retain/release pair.
struct CEmitOptions {
  BoundsCheckMode boundsChecks = BoundsCheckMode::On;
  std::shared_ptr<const GuardPlan> plan; // consulted when Auto
};

/// Emits the module as a C99 translation unit. Compile with:
///   cc -O2 -msse4.2 -fopenmp out.c -o prog
CEmitResult emitC(const Module& m);
CEmitResult emitC(const Module& m, const CEmitOptions& opts);

} // namespace mmx::ir
