// C emitter: prints a lowered module as one self-contained C file — the
// "plain (parallel) C code" the paper's translator produces for an
// ordinary C compiler. Parallel loops become `#pragma omp parallel for`
// with explicit privatization (Fig. 11); vectorized loops become SSE
// intrinsics over 4 x f32 / 4 x i32 lanes; matrices are refcounted structs
// managed by an emitted prelude (the §III-B cells, rendered in C).
//
// Builtin coverage: everything a file-driven program needs (readMatrix /
// writeMatrix / initMatrix / dimSize / print* / checkGenBounds /
// cloneMatrix / matToFloat / min / max / numThreads). Simulator-backed
// builtins (synthSsh, connComp, detectEddies) are interpreter-only;
// emitting a program that uses them is reported as an error.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/guards.hpp"
#include "ir/ir.hpp"
#include "support/source.hpp"

namespace mmx::ir {

struct CEmitResult {
  bool ok = false;
  std::string code;                 // valid when ok
  std::vector<std::string> errors;  // unsupported constructs
};

/// Bounds-check emission policy (ISSUE 3). `On` emits every runtime guard
/// (the historical output, byte-for-byte). `Off` lowers every guarded
/// operation to its unchecked form. `Auto` consults the shapecheck
/// GuardPlan: sites the analysis proved safe use the unchecked form,
/// everything else keeps its guard. Under Auto the plan's borrowed
/// parameters also drop their per-call retain/release pair.
/// Runtime instrumentation compiled into the translated program (ISSUE 5).
/// `Off` strips every mmx_prof hook line from the prelude, so the output
/// is byte-identical to the uninstrumented emitter. `Counters` plants the
/// mmx_prof runtime: allocation/refcount traffic, per-thread OMP panel
/// busy time, and per-site aggregates (with-loops, matmul) dumped as flat
/// stats JSON to $MMX_PROF_JSON at exit. `Trace` additionally buffers one
/// Chrome trace event per span and dumps them to $MMX_PROF_TRACE — the
/// same schemas mmc's own --stats-json/--trace-json emit, so compile-time
/// and run-time land on one Perfetto timeline (the runtime uses pid 2,
/// the compiler pid 1).
enum class InstrumentMode { Off, Counters, Trace };

struct CEmitOptions {
  BoundsCheckMode boundsChecks = BoundsCheckMode::On;
  std::shared_ptr<const GuardPlan> plan; // consulted when Auto
  InstrumentMode instrument = InstrumentMode::Off;
  /// Source attribution for instrumented spans ("with-loop@file:line").
  /// Optional: without it, spans fall back to the enclosing function name.
  std::shared_ptr<const SourceManager> sourceManager;
  /// Kernel backend compiled into the program as MMX_BACKEND_DEFAULT: a
  /// registry name pins the emitted selection; "auto" (the default) lets
  /// the program consult $MMX_BACKEND at startup and otherwise pick the
  /// best core the host supports. The emitted main() calls
  /// mmx_backend_select() before xc_main(); see DESIGN.md "Kernel backend
  /// registry" for the prelude hook ABI.
  std::string backend = "auto";
  /// Matrix allocator compiled into the program (ISSUE 9). "system" emits
  /// the historical calloc/free prelude byte-for-byte — the compatibility
  /// pin. Any other value splices the mmx_ms_* thread-caching runtime into
  /// the prelude: "auto" (the default) consults $MMX_ALLOC at startup and
  /// otherwise uses the cache strategy; an explicit name is baked in as
  /// MMX_ALLOC_DEFAULT. The mmx_ms_* policy constants mirror
  /// src/runtime/memsys.cpp verbatim (see its header comment) so the
  /// rt.alloc.cache.* counters match the interpreter exactly on
  /// single-threaded runs.
  std::string alloc = "auto";
};

/// Emits the module as a C99 translation unit. Compile with:
///   cc -O2 -msse4.2 -fopenmp out.c -o prog
CEmitResult emitC(const Module& m);
CEmitResult emitC(const Module& m, const CEmitOptions& opts);

} // namespace mmx::ir
