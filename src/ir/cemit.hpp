// C emitter: prints a lowered module as one self-contained C file — the
// "plain (parallel) C code" the paper's translator produces for an
// ordinary C compiler. Parallel loops become `#pragma omp parallel for`
// with explicit privatization (Fig. 11); vectorized loops become SSE
// intrinsics over 4 x f32 / 4 x i32 lanes; matrices are refcounted structs
// managed by an emitted prelude (the §III-B cells, rendered in C).
//
// Builtin coverage: everything a file-driven program needs (readMatrix /
// writeMatrix / initMatrix / dimSize / print* / checkGenBounds /
// cloneMatrix / matToFloat / min / max / numThreads). Simulator-backed
// builtins (synthSsh, connComp, detectEddies) are interpreter-only;
// emitting a program that uses them is reported as an error.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace mmx::ir {

struct CEmitResult {
  bool ok = false;
  std::string code;                 // valid when ok
  std::vector<std::string> errors;  // unsupported constructs
};

/// Emits the module as a C99 translation unit. Compile with:
///   cc -O2 -msse4.2 -fopenmp out.c -o prog
CEmitResult emitC(const Module& m);

} // namespace mmx::ir
