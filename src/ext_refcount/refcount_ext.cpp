#include "ext_refcount/refcount_ext.hpp"

#include "cminus/sema.hpp"

namespace mmx::ext_refcount {

using cm::ExprRes;
using cm::Sema;
using cm::Type;

namespace {

ext::GrammarFragment refcountFragment() {
  ext::GrammarFragment f;
  f.name = "refcount";
  auto kw = [&](const char* t) {
    f.terminals.push_back({std::string("'") + t + "'", t, true, 10, false});
  };
  kw("refptr");
  kw("rcalloc");
  kw("rccount");
  kw("rclive");
  f.nonterminals.push_back("RElemTy");
  auto prod = [&](const char* name, const char* lhs,
                  std::vector<std::string> rhs) {
    f.productions.push_back({lhs, std::move(rhs), name});
  };
  prod("ty_refptr", "TypeE", {"'refptr'", "RElemTy"});
  prod("relem_int", "RElemTy", {"'int'"});
  prod("relem_float", "RElemTy", {"'float'"});
  prod("relem_bool", "RElemTy", {"'bool'"});
  prod("prim_rcalloc", "Primary",
       {"'rcalloc'", "'('", "RElemTy", "','", "Expr", "')'"});
  prod("prim_rccount", "Primary", {"'rccount'", "'('", "Expr", "')'"});
  prod("prim_rclive", "Primary", {"'rclive'", "'('", "')'"});
  return f;
}

rt::Elem elemOf(const ast::NodePtr& n) {
  if (n->is("relem_int")) return rt::Elem::I32;
  if (n->is("relem_bool")) return rt::Elem::Bool;
  return rt::Elem::F32;
}

void installRefcountSemantics(Sema& s) {
  s.defineType("ty_refptr", [](Sema&, const ast::NodePtr& n) {
    return Type::refptr(elemOf(n->child(1)));
  }, "refcount");

  s.defineExpr("prim_rcalloc", [](Sema& s2, const ast::NodePtr& n) {
    rt::Elem e = elemOf(n->child(2));
    ExprRes len = s2.coerce(s2.expr(n->child(4)), Type::intTy(), n->range);
    if (len.bad()) return ExprRes::error();
    std::vector<ir::ExprPtr> args;
    args.push_back(ir::constI(static_cast<int32_t>(e)));
    args.push_back(std::move(len.code));
    return ExprRes{Type::refptr(e),
                   ir::call("initMatrix", std::move(args), ir::Ty::Mat)};
  }, "refcount");

  s.defineExpr("prim_rccount", [](Sema& s2, const ast::NodePtr& n) {
    ExprRes p = s2.expr(n->child(2));
    if (p.bad()) return ExprRes::error();
    if (p.type.k != Type::K::RefPtr && !p.type.isMatrix()) {
      s2.error(n->range, "rccount needs a refptr or matrix, found " +
                             p.type.str());
      return ExprRes::error();
    }
    std::vector<ir::ExprPtr> args;
    args.push_back(std::move(p.code));
    return ExprRes{Type::intTy(),
                   ir::call("refCount", std::move(args), ir::Ty::I32)};
  }, "refcount");

  s.defineExpr("prim_rclive", [](Sema&, const ast::NodePtr&) {
    return ExprRes{Type::intTy(), ir::call("rcLive", {}, ir::Ty::I32)};
  }, "refcount");

  // Indexing of refptr buffers: when the matrix extension is composed its
  // post_index handler already covers RefPtr (they share the runtime);
  // standalone, install a scalar-only handler.
  if (!s.extensionData.count("matrix.withTailHooks")) {
    s.defineExpr("post_index", [](Sema& s2, const ast::NodePtr& n) {
      ExprRes base = s2.expr(n->child(0));
      if (base.bad()) return ExprRes::error();
      if (base.type.k != Type::K::RefPtr) {
        s2.error(n->range, "type " + base.type.str() + " cannot be indexed");
        return ExprRes::error();
      }
      auto idxList = n->child(2);
      if (!idxList->is("indexlist_one") ||
          !idxList->child(0)->is("ixe_expr")) {
        s2.error(n->range, "refptr indexing takes a single int index");
        return ExprRes::error();
      }
      ExprRes i = s2.coerce(s2.expr(idxList->child(0)->child(0)),
                            Type::intTy(), n->range);
      if (i.bad()) return ExprRes::error();
      Type et = cm::scalarOfElem(base.type.elem);
      return ExprRes{et, ir::loadFlat(std::move(base.code),
                                      std::move(i.code),
                                      Sema::lowerTy(et))};
    }, "refcount");

    s.addAssignHook([](Sema& s2, const ast::NodePtr& lhs,
                       const ast::NodePtr& rhs) -> bool {
      // p[i] = v for a refptr variable p.
      ast::NodePtr idx = ast::findFirst(lhs, "post_index");
      if (!idx) return false;
      std::string name(Sema::idText(idx->child(0)));
      cm::VarInfo* v = name.empty() ? nullptr : s2.lookupVar(name);
      if (!v || v->type.k != Type::K::RefPtr) return false;
      auto idxList = idx->child(2);
      if (!idxList->is("indexlist_one") ||
          !idxList->child(0)->is("ixe_expr")) {
        s2.error(lhs->range, "refptr indexing takes a single int index");
        return true;
      }
      ExprRes i = s2.coerce(s2.expr(idxList->child(0)->child(0)),
                            Type::intTy(), lhs->range);
      ExprRes val = s2.coerce(s2.expr(rhs),
                              cm::scalarOfElem(v->type.elem), rhs->range);
      if (i.bad() || val.bad()) return true;
      s2.emit(ir::storeFlat(v->slots[0], std::move(i.code),
                            std::move(val.code)));
      return true;
    });
  }
}

class RefcountExtension final : public ext::LanguageExtension {
public:
  std::string name() const override { return "refcount"; }
  ext::GrammarFragment grammarFragment() const override {
    return refcountFragment();
  }
  void installSemantics(cm::Sema& sema) const override {
    installRefcountSemantics(sema);
  }
};

} // namespace

ext::ExtensionPtr refcountExtension() {
  return std::make_unique<RefcountExtension>();
}

} // namespace mmx::ext_refcount
