// The reference-counting pointer extension (paper §III-B): refptr <elem>
// buffers carry a hidden 4-byte counter; copies retain, reassignment and
// scope exit release, and the buffer is freed when the count reaches zero.
// Lowered onto the same refcounted cells the matrix runtime uses (the
// paper builds matrices on top of these pointers; we share one runtime).
#pragma once

#include "ext/extension.hpp"

namespace mmx::ext_refcount {

ext::ExtensionPtr refcountExtension();

} // namespace mmx::ext_refcount
