#include "ext/fragment.hpp"

#include <map>
#include <set>

namespace mmx::ext {

GrammarFragment mergeFragments(const GrammarFragment& a,
                               const GrammarFragment& b, std::string name) {
  GrammarFragment out = a;
  out.name = std::move(name);
  out.terminals.insert(out.terminals.end(), b.terminals.begin(),
                       b.terminals.end());
  out.nonterminals.insert(out.nonterminals.end(), b.nonterminals.begin(),
                          b.nonterminals.end());
  out.productions.insert(out.productions.end(), b.productions.begin(),
                         b.productions.end());
  if (out.startNT.empty()) out.startNT = b.startNT;
  return out;
}

bool composeGrammar(const std::vector<const GrammarFragment*>& fragments,
                    grammar::Grammar& out, DiagnosticEngine& diags) {
  bool ok = true;

  // Pass 1: declare all terminals, checking for cross-fragment clashes.
  std::map<std::string, std::pair<lex::TerminalId, std::string>> termByName;
  for (const GrammarFragment* f : fragments) {
    DiagnosticEngine::OriginScope origin(diags, f->name);
    for (const TerminalSpec& t : f->terminals) {
      auto it = termByName.find(t.name);
      if (it != termByName.end()) {
        diags.error({}, "terminal '" + t.name + "' declared by both '" +
                            it->second.second + "' and '" + f->name + "'");
        ok = false;
        continue;
      }
      lex::TerminalId id =
          out.addTerminal({t.name, t.pattern, t.literal, t.precedence, t.layout});
      termByName[t.name] = {id, f->name};
    }
  }

  // Pass 2: declare nonterminals (shared names are *allowed* — extensions
  // add productions to host nonterminals — but a nonterminal must not
  // collide with a terminal name).
  for (const GrammarFragment* f : fragments) {
    DiagnosticEngine::OriginScope origin(diags, f->name);
    for (const std::string& nt : f->nonterminals) {
      if (termByName.count(nt)) {
        diags.error({}, "nonterminal '" + nt + "' of fragment '" + f->name +
                            "' collides with a terminal name");
        ok = false;
        continue;
      }
      out.addNonterminal(nt);
    }
  }

  // Pass 3: productions, resolving symbol names.
  std::set<std::string> prodNames;
  for (const GrammarFragment* f : fragments) {
    DiagnosticEngine::OriginScope origin(diags, f->name);
    for (const ProdSpec& p : f->productions) {
      if (!prodNames.insert(p.name).second) {
        diags.error({}, "duplicate production name '" + p.name + "' (fragment '" +
                            f->name + "')");
        ok = false;
        continue;
      }
      grammar::NonterminalId lhs;
      if (!out.findNonterminal(p.lhs, lhs)) {
        diags.error({}, "production '" + p.name + "': unknown nonterminal '" +
                            p.lhs + "'");
        ok = false;
        continue;
      }
      std::vector<grammar::GSym> rhs;
      bool bad = false;
      for (const std::string& s : p.rhs) {
        auto t = termByName.find(s);
        if (t != termByName.end()) {
          rhs.push_back(grammar::GSym::term(t->second.first));
          continue;
        }
        grammar::NonterminalId nt;
        if (out.findNonterminal(s, nt)) {
          rhs.push_back(grammar::GSym::nonterm(nt));
          continue;
        }
        diags.error({}, "production '" + p.name + "': unresolved symbol '" + s +
                            "'");
        ok = false;
        bad = true;
        break;
      }
      if (!bad) out.addProduction(lhs, std::move(rhs), p.name, f->name);
    }
  }

  // Start symbol comes from the first fragment that sets one (the host).
  bool haveStart = false;
  for (const GrammarFragment* f : fragments) {
    if (f->startNT.empty()) continue;
    grammar::NonterminalId s;
    if (!out.findNonterminal(f->startNT, s)) {
      diags.error({}, "start nonterminal '" + f->startNT + "' undeclared");
      ok = false;
    } else if (!haveStart) {
      out.setStart(s);
      haveStart = true;
    }
  }
  if (!haveStart) {
    diags.error({}, "no fragment declares a start nonterminal");
    ok = false;
  }

  if (ok) out.computeFirstSets();
  return ok;
}

} // namespace mmx::ext
