// The language-extension interface (paper §II): an extension is a grammar
// fragment (new concrete syntax) plus semantics (type checking, error
// checking, translation to the host level) registered against the Sema
// dispatcher. Extensions are composed by the Translator; users pick the
// set that fits their problem, like libraries.
#pragma once

#include <memory>
#include <string>

#include "ext/fragment.hpp"

namespace mmx::cm {
class Sema; // cminus/sema.hpp; extensions include it from their .cpp
}

namespace mmx::ext {

class LanguageExtension {
public:
  virtual ~LanguageExtension() = default;

  /// Unique extension name (also the fragment name).
  virtual std::string name() const = 0;

  /// Concrete-syntax contribution.
  virtual GrammarFragment grammarFragment() const = 0;

  /// Registers handlers, operator hooks, and builtins.
  virtual void installSemantics(cm::Sema& sema) const = 0;
};

using ExtensionPtr = std::unique_ptr<LanguageExtension>;

} // namespace mmx::ext
