// Grammar fragments: the declarative unit of language composition.
// The host language is one fragment; each extension contributes another.
// Fragments reference symbols by name; composition resolves names across
// all chosen fragments and produces one grammar::Grammar (paper §II, §VI-A).
#pragma once

#include <string>
#include <vector>

#include "grammar/grammar.hpp"
#include "support/diag.hpp"

namespace mmx::ext {

/// A terminal declaration within a fragment.
struct TerminalSpec {
  std::string name;    // unique across the composition, e.g. "'with'", "ID"
  std::string pattern; // regex or literal text
  bool literal = false;
  int precedence = 0;  // keywords use >0 so they beat ID on length ties
  bool layout = false;
};

/// A production: symbols referenced by name. A name resolves to a terminal
/// if any composed fragment declares a terminal with that name, otherwise
/// to a nonterminal.
struct ProdSpec {
  std::string lhs;
  std::vector<std::string> rhs;
  std::string name; // unique production label (semantic node kind)
};

/// One language fragment (host or extension).
struct GrammarFragment {
  std::string name; // "host", "matrix", "tuple", ...
  std::vector<TerminalSpec> terminals;
  std::vector<std::string> nonterminals; // NTs introduced by this fragment
  std::vector<ProdSpec> productions;
  std::string startNT; // host only; extensions leave empty
};

/// Merges two fragments into one (used to treat host+matrix as the base
/// language when checking extensions-of-extensions, e.g. the transform
/// extension of §V which extends the matrix constructs).
GrammarFragment mergeFragments(const GrammarFragment& a,
                               const GrammarFragment& b, std::string name);

/// Composes fragments (host first) into a single grammar. Reports name
/// clashes and unresolved symbols to `diags`; returns false on error.
/// On success the grammar has FIRST sets computed and is ready for
/// LalrTables::build.
bool composeGrammar(const std::vector<const GrammarFragment*>& fragments,
                    grammar::Grammar& out, DiagnosticEngine& diags);

} // namespace mmx::ext
