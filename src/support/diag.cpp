#include "support/diag.hpp"

#include <sstream>

namespace mmx {

bool DiagnosticEngine::hasErrors() const {
  for (const auto& d : diags_)
    if (d.severity == Severity::Error) return true;
  return false;
}

size_t DiagnosticEngine::errorCount() const {
  size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == Severity::Error) ++n;
  return n;
}

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string renderDiagnostic(const Diagnostic& d, const SourceManager* sm) {
  std::ostringstream out;
  if (sm && d.range.valid()) {
    LineCol lc = sm->lineCol(d.range.begin);
    out << sm->name(d.range.begin.file) << ':' << lc.line << ':' << lc.col
        << ": ";
  }
  out << severityName(d.severity) << ": " << d.message << '\n';
  return out.str();
}

std::string renderDiagnostics(const std::vector<Diagnostic>& ds,
                              const SourceManager* sm) {
  std::string out;
  for (const auto& d : ds) out += renderDiagnostic(d, sm);
  return out;
}

std::string DiagnosticEngine::render(const SourceManager& sm) const {
  return renderDiagnostics(diags_, &sm);
}

} // namespace mmx
