#include "support/diag.hpp"

#include <sstream>

namespace mmx {

bool DiagnosticEngine::hasErrors() const {
  for (const auto& d : diags_)
    if (d.severity == Severity::Error) return true;
  return false;
}

size_t DiagnosticEngine::errorCount() const {
  size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == Severity::Error) ++n;
  return n;
}

static const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string DiagnosticEngine::render(const SourceManager& sm) const {
  std::ostringstream out;
  for (const auto& d : diags_) {
    if (d.range.valid()) {
      LineCol lc = sm.lineCol(d.range.begin);
      out << sm.name(d.range.begin.file) << ':' << lc.line << ':' << lc.col
          << ": ";
    }
    out << severityName(d.severity) << ": " << d.message << '\n';
  }
  return out.str();
}

} // namespace mmx
