#include "support/crash.hpp"

#include <cstdlib>
#include <cstring>

#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MMX_HAVE_CRASH_HANDLERS 1
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#if __has_include(<execinfo.h>)
#define MMX_HAVE_BACKTRACE 1
#include <execinfo.h>
#endif
#endif

namespace mmx::crash {

#ifdef MMX_HAVE_CRASH_HANDLERS

namespace {

char g_path[1024];
bool g_installed = false;

const int kSignals[] = {SIGSEGV, SIGABRT, SIGFPE, SIGBUS};

const char* signalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    case SIGBUS: return "SIGBUS";
  }
  return "unknown";
}

// SIGSTKSZ is no longer a constant expression on recent glibc; 64 KiB is
// comfortably above any writeCrashJson stack frame.
alignas(16) char g_altStack[64 * 1024];

void handler(int sig) {
  // One dump per process: a fault inside the dump (or a second crashing
  // thread) exits with the conventional signal status instead of looping.
  static volatile sig_atomic_t busy = 0;
  if (busy) _exit(128 + sig);
  busy = 1;

  void* frames[64];
  int nFrames = 0;
#ifdef MMX_HAVE_BACKTRACE
  nFrames = backtrace(frames, 64);
#endif

  int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    metrics::writeCrashJson(fd, sig, signalName(sig), frames, nFrames);
    ::close(fd);
  }
#ifdef MMX_HAVE_BACKTRACE
  // Human-readable frames go to stderr, not into the JSON (symbol lines
  // contain arbitrary characters the no-alloc writer cannot escape).
  backtrace_symbols_fd(frames, nFrames, 2);
#endif

  // Re-raise with the default disposition: the wait status shows the real
  // signal, and SIGABRT cores still drop where operators expect them.
  signal(sig, SIG_DFL);
  raise(sig);
}

} // namespace

bool install(const char* path) {
  if (!path || !*path) return false;
  std::strncpy(g_path, path, sizeof(g_path) - 1);
  g_path[sizeof(g_path) - 1] = 0;
  if (g_installed) return true; // handlers already wired; path updated

#ifdef MMX_HAVE_BACKTRACE
  // Prime libgcc's unwinder: its first call may malloc/dlopen, which must
  // not happen inside the handler.
  void* prime[4];
  backtrace(prime, 4);
#endif

  stack_t ss;
  std::memset(&ss, 0, sizeof(ss));
  ss.ss_sp = g_altStack;
  ss.ss_size = sizeof(g_altStack);
  sigaltstack(&ss, nullptr);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = handler;
  sa.sa_flags = SA_ONSTACK;
  sigemptyset(&sa.sa_mask);
  for (int sig : kSignals) sigaction(sig, &sa, nullptr);
  g_installed = true;
  return true;
}

bool installFromEnv() {
  const char* path = std::getenv("MMX_CRASH_JSON");
  if (!path || !*path) return false;
  return install(path);
}

bool installed() { return g_installed; }

#else // !MMX_HAVE_CRASH_HANDLERS

bool install(const char*) { return false; }
bool installFromEnv() { return false; }
bool installed() { return false; }

#endif

} // namespace mmx::crash
