#include "support/perf.hpp"

#include <atomic>
#include <cstring>

#include "support/metrics.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define MMX_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mmx::perf {

namespace {

std::atomic<bool> g_requested{false};

const metrics::Counter& skipCounter() {
  static const metrics::Counter c = metrics::counter("pmu.skipped");
  return c;
}

#ifdef MMX_HAVE_PERF_EVENT

constexpr int kEvents = 4;
constexpr uint64_t kConfigs[kEvents] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

/// Per-thread counter group. state: 0 = untried, 1 = open, -1 = denied.
struct ThreadGroup {
  int fds[kEvents] = {-1, -1, -1, -1};
  int state = 0;

  ~ThreadGroup() {
    for (int fd : fds)
      if (fd >= 0) ::close(fd);
  }

  bool open() {
    for (int i = 0; i < kEvents; ++i) {
      perf_event_attr attr;
      std::memset(&attr, 0, sizeof(attr));
      attr.type = PERF_TYPE_HARDWARE;
      attr.size = sizeof(attr);
      attr.config = kConfigs[i];
      attr.disabled = 1;
      attr.exclude_kernel = 1;
      attr.exclude_hv = 1;
      long fd = ::syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0);
      if (fd < 0) {
        for (int j = 0; j < i; ++j) {
          ::close(fds[j]);
          fds[j] = -1;
        }
        state = -1;
        return false;
      }
      fds[i] = static_cast<int>(fd);
    }
    state = 1;
    return true;
  }

  void readInto(uint64_t out[kEvents]) {
    for (int i = 0; i < kEvents; ++i) {
      uint64_t v = 0;
      if (::read(fds[i], &v, sizeof(v)) != sizeof(v)) v = 0;
      out[i] = v;
    }
  }
};

ThreadGroup& group() {
  thread_local ThreadGroup g;
  return g;
}

#endif // MMX_HAVE_PERF_EVENT

} // namespace

void setRequested(bool on) {
  g_requested.store(on, std::memory_order_relaxed);
}

bool requested() { return g_requested.load(std::memory_order_relaxed); }

#ifdef MMX_HAVE_PERF_EVENT

bool begin() {
  ThreadGroup& g = group();
  if (g.state == 0) g.open();
  if (g.state < 0) {
    skipCounter().add();
    return false;
  }
  for (int fd : g.fds) {
    ::ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ::ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
  return true;
}

Sample end() {
  ThreadGroup& g = group();
  Sample s;
  if (g.state != 1) return s;
  for (int fd : g.fds) ::ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  uint64_t v[kEvents];
  g.readInto(v);
  s.cycles = v[0];
  s.instructions = v[1];
  s.cacheMisses = v[2];
  s.branchMisses = v[3];
  s.ok = true;
  return s;
}

bool available() {
  ThreadGroup& g = group();
  if (g.state == 0) g.open();
  return g.state == 1;
}

#else // !MMX_HAVE_PERF_EVENT

bool begin() {
  skipCounter().add();
  return false;
}

Sample end() { return {}; }

bool available() { return false; }

#endif

} // namespace mmx::perf
