#include "support/metrics.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

namespace mmx::metrics {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

constexpr size_t kMaxCounters = 256;
constexpr size_t kMaxTimers = 128;
constexpr size_t kMaxHistograms = 64;
constexpr unsigned kHistBuckets = 64;
constexpr size_t kMaxTraceEvents = 1u << 20;

/// Bucket index for `v`: 0 holds zero, b holds [2^(b-1), 2^b).
inline unsigned histBucket(uint64_t v) {
  if (!v) return 0;
  unsigned width = 64u - static_cast<unsigned>(__builtin_clzll(v));
  return width < kHistBuckets ? width : kHistBuckets - 1;
}

/// One shared lock-free distribution cell. Unlike counters/timers these
/// are not sharded per thread: a histogram record is already several
/// atomics wide, and the hot sites (pool chunks, matmul calls, allocs)
/// fire orders of magnitude less often than token counters.
struct HistCell {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> max{0};
  std::array<std::atomic<uint64_t>, kHistBuckets> buckets{};

  void record(uint64_t v) {
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
    uint64_t prev = max.load(std::memory_order_relaxed);
    while (v > prev &&
           !max.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
    buckets[histBucket(v)].fetch_add(1, std::memory_order_relaxed);
  }
};

struct TimerCell {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> totalNs{0};
  std::atomic<uint64_t> maxNs{0};

  void record(uint64_t ns) {
    count.fetch_add(1, std::memory_order_relaxed);
    totalNs.fetch_add(ns, std::memory_order_relaxed);
    uint64_t prev = maxNs.load(std::memory_order_relaxed);
    while (ns > prev &&
           !maxNs.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
    }
  }
};

/// One thread's shard. Lives until the thread exits, then flushes into the
/// registry's retired totals so finished pool workers keep contributing to
/// later snapshots.
struct ThreadShard {
  std::array<std::atomic<uint64_t>, kMaxCounters> counters{};
  std::array<TimerCell, kMaxTimers> timers{};
  unsigned tid = 0;

  ~ThreadShard();
};

struct TraceBuf {
  struct Ev {
    const char* name;
    const char* category;
    uint64_t startNs;
    uint64_t durNs;
    unsigned tid;
  };
  std::mutex mu;
  std::vector<Ev> events;
  size_t cap = kMaxTraceEvents;
  uint64_t dropped = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, uint32_t, std::less<>> counterIds;
  std::vector<std::string> counterNames;
  std::map<std::string, uint32_t, std::less<>> timerIds;
  std::vector<std::string> timerNames;
  std::map<std::string, uint32_t, std::less<>> histIds;
  std::vector<std::string> histNames;
  std::array<HistCell, kMaxHistograms> hists{};

  std::vector<ThreadShard*> shards; // live threads
  // Totals flushed by exited threads.
  std::array<std::atomic<uint64_t>, kMaxCounters> retiredCounters{};
  std::array<TimerCell, kMaxTimers> retiredTimers{};

  std::atomic<unsigned> nextTid{0};
  TraceBuf trace;

  std::vector<std::pair<std::string, GaugeFn>> gauges;
};

Registry& registry() {
  // Leaked intentionally: shards of detached threads may flush during
  // process teardown, after static destructors would have run.
  static Registry* r = new Registry();
  return *r;
}

ThreadShard::~ThreadShard() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (size_t i = 0; i < kMaxCounters; ++i) {
    uint64_t v = counters[i].load(std::memory_order_relaxed);
    if (v) r.retiredCounters[i].fetch_add(v, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kMaxTimers; ++i) {
    TimerCell& c = timers[i];
    uint64_t n = c.count.load(std::memory_order_relaxed);
    if (!n) continue;
    r.retiredTimers[i].count.fetch_add(n, std::memory_order_relaxed);
    r.retiredTimers[i].totalNs.fetch_add(
        c.totalNs.load(std::memory_order_relaxed), std::memory_order_relaxed);
    uint64_t m = c.maxNs.load(std::memory_order_relaxed);
    uint64_t prev = r.retiredTimers[i].maxNs.load(std::memory_order_relaxed);
    while (m > prev && !r.retiredTimers[i].maxNs.compare_exchange_weak(
                           prev, m, std::memory_order_relaxed)) {
    }
  }
  r.shards.erase(std::remove(r.shards.begin(), r.shards.end(), this),
                 r.shards.end());
}

ThreadShard& shard() {
  thread_local struct Owner {
    ThreadShard* p = nullptr;
    ~Owner() { delete p; }
  } owner;
  if (!owner.p) {
    auto* s = new ThreadShard();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    s->tid = r.nextTid.fetch_add(1, std::memory_order_relaxed);
    r.shards.push_back(s);
    owner.p = s;
  }
  return *owner.p;
}

// Every timestamp in this file derives from steady_clock: wall clocks can
// be stepped (NTP) mid-run, which would produce negative span durations in
// the trace output.
static_assert(std::chrono::steady_clock::is_steady,
              "metrics timestamps require a monotonic clock");

uint64_t processStartNs() {
  static const uint64_t t0 = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return t0;
}

// Touch the anchor at static-init time so nowNs() is relative to (roughly)
// process start even if metrics are first enabled late.
const uint64_t g_anchor = processStartNs();

void appendJsonString(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// ns -> "12.345" microseconds with stable formatting.
std::string usString(uint64_t ns) {
  std::ostringstream o;
  o << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
    << static_cast<char>('0' + (ns % 100) / 10)
    << static_cast<char>('0' + ns % 10);
  return o.str();
}

std::string humanNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull)
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  else if (ns >= 1000000ull)
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  else if (ns >= 1000ull)
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(ns) / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  return buf;
}

/// Rank-`q` estimate from folded log2 bucket counts: find the bucket
/// holding the ceil(q*count)-th value, then interpolate linearly across
/// its [2^(b-1), 2^b) span. Clamped to the observed max so a sparse top
/// bucket cannot report an impossible tail.
uint64_t histQuantile(const std::array<uint64_t, kHistBuckets>& buckets,
                      uint64_t count, uint64_t maxValue, double q) {
  if (!count) return 0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * double(count)));
  if (!rank) rank = 1;
  if (rank > count) rank = count;
  uint64_t cum = 0;
  for (unsigned b = 0; b < kHistBuckets; ++b) {
    uint64_t n = buckets[b];
    if (!n) continue;
    if (cum + n >= rank) {
      uint64_t lo = b == 0 ? 0 : (1ull << (b - 1));
      uint64_t hi = b == 0 ? 1 : (b == 63 ? maxValue : (1ull << b));
      double frac = double(rank - cum) / double(n);
      uint64_t v = lo + static_cast<uint64_t>(frac * double(hi - lo));
      return std::min(v, maxValue);
    }
    cum += n;
  }
  return maxValue;
}

} // namespace

void enable(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

uint64_t nowNs() {
  uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - g_anchor;
}

unsigned threadId() { return shard().tid; }

Counter counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counterIds.find(name);
  if (it != r.counterIds.end()) return Counter(it->second);
  if (r.counterNames.size() >= kMaxCounters)
    return Counter(kMaxCounters - 1); // overflow bucket; never expected
  uint32_t id = static_cast<uint32_t>(r.counterNames.size());
  r.counterNames.emplace_back(name);
  r.counterIds.emplace(std::string(name), id);
  return Counter(id);
}

void Counter::add(uint64_t delta) const {
  if (!enabled()) return;
  shard().counters[id_].fetch_add(delta, std::memory_order_relaxed);
}

uint64_t Counter::value() const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  uint64_t v = r.retiredCounters[id_].load(std::memory_order_relaxed);
  for (ThreadShard* s : r.shards)
    v += s->counters[id_].load(std::memory_order_relaxed);
  return v;
}

Timer timer(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.timerIds.find(name);
  if (it != r.timerIds.end()) return Timer(it->second);
  if (r.timerNames.size() >= kMaxTimers) return Timer(kMaxTimers - 1);
  uint32_t id = static_cast<uint32_t>(r.timerNames.size());
  r.timerNames.emplace_back(name);
  r.timerIds.emplace(std::string(name), id);
  return Timer(id);
}

Histogram histogram(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histIds.find(name);
  if (it != r.histIds.end()) return Histogram(it->second);
  if (r.histNames.size() >= kMaxHistograms)
    return Histogram(kMaxHistograms - 1); // overflow bucket; never expected
  uint32_t id = static_cast<uint32_t>(r.histNames.size());
  r.histNames.emplace_back(name);
  r.histIds.emplace(std::string(name), id);
  return Histogram(id);
}

void Histogram::record(uint64_t value) const {
  if (!enabled()) return;
  registry().hists[id_].record(value);
}

void registerGauge(std::string_view name, GaugeFn fn) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& g : r.gauges)
    if (g.first == name) {
      g.second = fn;
      return;
    }
  r.gauges.emplace_back(std::string(name), fn);
}

void Timer::record(uint64_t ns) const {
  if (!enabled()) return;
  shard().timers[id_].record(ns);
}

void traceSpan(const char* name, const char* category, uint64_t startNs,
               uint64_t durNs) {
  if (!enabled()) return;
  unsigned tid = threadId();
  TraceBuf& t = registry().trace;
  std::lock_guard<std::mutex> lock(t.mu);
  if (t.events.size() >= t.cap) {
    ++t.dropped;
    return;
  }
  t.events.push_back({name, category, startNs, durNs, tid});
}

namespace detail {
void setTraceCapForTest(size_t cap) {
  TraceBuf& t = registry().trace;
  std::lock_guard<std::mutex> lock(t.mu);
  t.cap = cap;
}
} // namespace detail

ScopedTimer::ScopedTimer(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!enabled()) return;
  armed_ = true;
  start_ = nowNs();
}

ScopedTimer::~ScopedTimer() {
  if (!armed_) return;
  uint64_t dur = nowNs() - start_;
  timer(name_).record(dur);
  traceSpan(name_, category_, start_, dur);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (size_t i = 0; i < kMaxCounters; ++i)
    r.retiredCounters[i].store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < kMaxTimers; ++i) {
    r.retiredTimers[i].count.store(0, std::memory_order_relaxed);
    r.retiredTimers[i].totalNs.store(0, std::memory_order_relaxed);
    r.retiredTimers[i].maxNs.store(0, std::memory_order_relaxed);
  }
  for (ThreadShard* s : r.shards) {
    for (size_t i = 0; i < kMaxCounters; ++i)
      s->counters[i].store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < kMaxTimers; ++i) {
      s->timers[i].count.store(0, std::memory_order_relaxed);
      s->timers[i].totalNs.store(0, std::memory_order_relaxed);
      s->timers[i].maxNs.store(0, std::memory_order_relaxed);
    }
  }
  for (size_t i = 0; i < kMaxHistograms; ++i) {
    HistCell& h = r.hists[i];
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0, std::memory_order_relaxed);
    h.max.store(0, std::memory_order_relaxed);
    for (unsigned b = 0; b < kHistBuckets; ++b)
      h.buckets[b].store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> tlock(r.trace.mu);
  r.trace.events.clear();
  r.trace.dropped = 0;
  r.trace.cap = kMaxTraceEvents; // undo any setTraceCapForTest shrink
}

Snapshot snapshot(bool includeZeros) {
  Snapshot out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);

  for (size_t i = 0; i < r.counterNames.size(); ++i) {
    uint64_t v = r.retiredCounters[i].load(std::memory_order_relaxed);
    for (ThreadShard* s : r.shards)
      v += s->counters[i].load(std::memory_order_relaxed);
    if (v || includeZeros) out.counters.push_back({r.counterNames[i], v});
  }
  for (const auto& [name, fn] : r.gauges) {
    uint64_t v = fn();
    if (v || includeZeros) out.counters.push_back({name, v});
  }
  std::sort(out.counters.begin(), out.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });

  for (size_t i = 0; i < r.timerNames.size(); ++i) {
    Snapshot::TimerRow row;
    row.name = r.timerNames[i];
    auto fold = [&row](TimerCell& c) {
      row.count += c.count.load(std::memory_order_relaxed);
      row.totalNs += c.totalNs.load(std::memory_order_relaxed);
      row.maxNs = std::max(row.maxNs, c.maxNs.load(std::memory_order_relaxed));
    };
    fold(r.retiredTimers[i]);
    for (ThreadShard* s : r.shards) fold(s->timers[i]);
    if (row.count || includeZeros) out.timers.push_back(std::move(row));
  }
  std::sort(out.timers.begin(), out.timers.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });

  for (size_t i = 0; i < r.histNames.size(); ++i) {
    HistCell& h = r.hists[i];
    Snapshot::HistogramRow row;
    row.name = r.histNames[i];
    row.count = h.count.load(std::memory_order_relaxed);
    row.sum = h.sum.load(std::memory_order_relaxed);
    row.max = h.max.load(std::memory_order_relaxed);
    std::array<uint64_t, kHistBuckets> buckets;
    for (unsigned b = 0; b < kHistBuckets; ++b)
      buckets[b] = h.buckets[b].load(std::memory_order_relaxed);
    row.p50 = histQuantile(buckets, row.count, row.max, 0.50);
    row.p95 = histQuantile(buckets, row.count, row.max, 0.95);
    row.p99 = histQuantile(buckets, row.count, row.max, 0.99);
    if (row.count || includeZeros) out.histograms.push_back(std::move(row));
  }
  std::sort(out.histograms.begin(), out.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });

  std::lock_guard<std::mutex> tlock(r.trace.mu);
  out.events.reserve(r.trace.events.size());
  for (const TraceBuf::Ev& e : r.trace.events)
    out.events.push_back({e.name, e.category, e.startNs, e.durNs, e.tid});
  out.droppedEvents = r.trace.dropped;
  return out;
}

std::string renderTimeReport(const Snapshot& s) {
  std::ostringstream out;
  out << "=== time report ===\n";
  if (s.timers.empty()) {
    out << "(no phases recorded)\n";
  } else {
    size_t w = 5;
    for (const auto& t : s.timers) w = std::max(w, t.name.size());
    char head[128];
    std::snprintf(head, sizeof(head), "%-*s %9s %12s %12s %12s\n",
                  static_cast<int>(w), "phase", "count", "total", "avg",
                  "max");
    out << head;
    for (const auto& t : s.timers) {
      char line[192];
      std::snprintf(line, sizeof(line), "%-*s %9llu %12s %12s %12s\n",
                    static_cast<int>(w), t.name.c_str(),
                    static_cast<unsigned long long>(t.count),
                    humanNs(t.totalNs).c_str(),
                    humanNs(t.count ? t.totalNs / t.count : 0).c_str(),
                    humanNs(t.maxNs).c_str());
      out << line;
    }
  }
  // Zero-valued counters are omitted from the snapshot, but the runtime
  // counters perf work steers by always print — their absence should read
  // as "0", not "not instrumented".
  static const char* const kAlwaysShown[] = {
      "kernel.matmul.packedBytes",
      "kernel.matmul.tiles",
      "pool.inlinedDispatches",
  };
  std::vector<Snapshot::CounterRow> rows = s.counters;
  for (const char* name : kAlwaysShown) {
    bool present = std::any_of(rows.begin(), rows.end(),
                               [&](const auto& c) { return c.name == name; });
    if (!present) rows.push_back({name, 0});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  if (!s.histograms.empty()) {
    out << "=== histograms ===\n";
    size_t hw = 9;
    for (const auto& h : s.histograms) hw = std::max(hw, h.name.size());
    char head[160];
    std::snprintf(head, sizeof(head), "%-*s %9s %10s %10s %10s %10s\n",
                  static_cast<int>(hw), "histogram", "count", "p50", "p95",
                  "p99", "max");
    out << head;
    // Values print raw: histograms mix units (latency ns, payload bytes),
    // so pretty time formatting would mislabel the size rows.
    for (const auto& h : s.histograms) {
      char line[224];
      std::snprintf(line, sizeof(line),
                    "%-*s %9llu %10llu %10llu %10llu %10llu\n",
                    static_cast<int>(hw), h.name.c_str(),
                    static_cast<unsigned long long>(h.count),
                    static_cast<unsigned long long>(h.p50),
                    static_cast<unsigned long long>(h.p95),
                    static_cast<unsigned long long>(h.p99),
                    static_cast<unsigned long long>(h.max));
      out << line;
    }
  }
  out << "=== counters ===\n";
  size_t w = 0;
  for (const auto& c : rows) w = std::max(w, c.name.size());
  for (const auto& c : rows) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-*s %12llu\n", static_cast<int>(w),
                  c.name.c_str(), static_cast<unsigned long long>(c.value));
    out << line;
  }
  if (s.droppedEvents) {
    char warn[160];
    std::snprintf(warn, sizeof(warn),
                  "warning: trace buffer saturated; %llu span(s) dropped "
                  "(see trace.droppedEvents)\n",
                  static_cast<unsigned long long>(s.droppedEvents));
    out << warn;
  }
  return out.str();
}

std::string renderStatsJson(const Snapshot& s) {
  std::ostringstream out;
  out << "{\n";
  bool first = true;
  auto emit = [&](const std::string& key, uint64_t v) {
    if (!first) out << ",\n";
    first = false;
    out << "  ";
    appendJsonString(out, key);
    out << ": " << v;
  };
  for (const auto& c : s.counters) emit(c.name, c.value);
  for (const auto& t : s.timers) {
    emit(t.name + ".count", t.count);
    emit(t.name + ".ns", t.totalNs);
    emit(t.name + ".max_ns", t.maxNs);
  }
  for (const auto& h : s.histograms) {
    emit(h.name + ".count", h.count);
    emit(h.name + ".sum", h.sum);
    emit(h.name + ".p50", h.p50);
    emit(h.name + ".p95", h.p95);
    emit(h.name + ".p99", h.p99);
    emit(h.name + ".max", h.max);
  }
  if (s.droppedEvents) emit("trace.droppedEvents", s.droppedEvents);
  out << "\n}\n";
  return out.str();
}

std::string renderTraceJson(const Snapshot& s) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : s.events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":";
    appendJsonString(out, e.name);
    out << ",\"cat\":";
    appendJsonString(out, e.category);
    out << ",\"ph\":\"X\",\"ts\":" << usString(e.startNs)
        << ",\"dur\":" << usString(e.durNs) << ",\"pid\":1,\"tid\":" << e.tid
        << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

// ---- continuous export (ISSUE 10 pillar 4) -------------------------------

namespace {

struct Exporter {
  std::thread th;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::ofstream out;
  std::map<std::string, uint64_t> prev; // last value of monotonic keys
  uint64_t seq = 0;
  unsigned intervalMs = 0;
};

std::mutex g_exporterMu;
Exporter* g_exporter = nullptr; // guarded by g_exporterMu

/// Splits a snapshot into flat keys (same schema as --stats-json):
/// monotonic quantities exported as deltas, instantaneous ones verbatim.
void flattenForExport(const Snapshot& s,
                      std::map<std::string, uint64_t>& monotonic,
                      std::map<std::string, uint64_t>& instant) {
  for (const auto& c : s.counters) monotonic[c.name] = c.value;
  for (const auto& t : s.timers) {
    monotonic[t.name + ".count"] = t.count;
    monotonic[t.name + ".ns"] = t.totalNs;
    instant[t.name + ".max_ns"] = t.maxNs;
  }
  for (const auto& h : s.histograms) {
    monotonic[h.name + ".count"] = h.count;
    monotonic[h.name + ".sum"] = h.sum;
    instant[h.name + ".p50"] = h.p50;
    instant[h.name + ".p95"] = h.p95;
    instant[h.name + ".p99"] = h.p99;
    instant[h.name + ".max"] = h.max;
  }
  if (s.droppedEvents) monotonic["trace.droppedEvents"] = s.droppedEvents;
}

/// One JSONL line: seq + monotonic timestamp, then every key whose delta
/// (or instantaneous value) is nonzero. Zero deltas are elided so an idle
/// interval costs two short keys, not the whole registry.
void emitDeltaLine(Exporter& e) {
  Snapshot s = snapshot();
  std::map<std::string, uint64_t> monotonic, instant;
  flattenForExport(s, monotonic, instant);
  std::ostringstream line;
  line << "{\"export.seq\": " << e.seq++
       << ", \"export.ts_ms\": " << nowNs() / 1000000;
  for (const auto& [key, value] : monotonic) {
    uint64_t& last = e.prev[key];
    uint64_t delta = value - last;
    last = value;
    if (!delta) continue;
    line << ", ";
    appendJsonString(line, key);
    line << ": " << delta;
  }
  for (const auto& [key, value] : instant) {
    if (!value) continue;
    line << ", ";
    appendJsonString(line, key);
    line << ": " << value;
  }
  line << "}";
  e.out << line.str() << "\n";
  e.out.flush();
}

void exportLoop(Exporter* e) {
  std::unique_lock<std::mutex> lk(e->mu);
  for (;;) {
    if (e->cv.wait_for(lk, std::chrono::milliseconds(e->intervalMs),
                       [e] { return e->stop; }))
      return;
    lk.unlock();
    emitDeltaLine(*e);
    lk.lock();
  }
}

} // namespace

bool startIntervalExport(const std::string& path, unsigned intervalMs) {
  if (!intervalMs) return false;
  std::lock_guard<std::mutex> lock(g_exporterMu);
  if (g_exporter) return false;
  auto* e = new Exporter();
  e->out.open(path);
  if (!e->out) {
    delete e;
    return false;
  }
  e->intervalMs = intervalMs;
  e->th = std::thread(exportLoop, e);
  g_exporter = e;
  return true;
}

void stopIntervalExport() {
  Exporter* e = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_exporterMu);
    e = g_exporter;
    g_exporter = nullptr;
  }
  if (!e) return;
  {
    std::lock_guard<std::mutex> lock(e->mu);
    e->stop = true;
  }
  e->cv.notify_all();
  e->th.join();
  emitDeltaLine(*e); // final line: runs shorter than one interval still export
  delete e;
}

// ---- crash flight recorder (ISSUE 10 pillar 3) ---------------------------

namespace {

/// write(2) loop; gives up on error (there is no recovery in a handler).
void crashPut(int fd, const char* s, size_t n) {
  while (n) {
    ssize_t w = ::write(fd, s, n);
    if (w <= 0) return;
    s += w;
    n -= static_cast<size_t>(w);
  }
}

void crashPut(int fd, const char* s) { crashPut(fd, s, std::strlen(s)); }

/// Metric names are identifier-ish; anything that would break the JSON
/// string is flattened instead of escaped (no buffers to grow here).
void crashPutName(int fd, const char* s) {
  char buf[128];
  size_t n = 0;
  for (; *s && n < sizeof(buf) - 1; ++s)
    buf[n++] = (*s == '"' || *s == '\\' ||
                static_cast<unsigned char>(*s) < 0x20)
                   ? '_'
                   : *s;
  buf[n] = 0;
  crashPut(fd, "\"");
  crashPut(fd, buf);
  crashPut(fd, "\"");
}

void crashKeyVal(int fd, const char* name, unsigned long long v,
                 bool& first) {
  char buf[64];
  if (!first) crashPut(fd, ",\n    ");
  first = false;
  crashPutName(fd, name);
  std::snprintf(buf, sizeof(buf), ": %llu", v);
  crashPut(fd, buf);
}

} // namespace

void writeCrashJson(int fd, int signo, const char* signame,
                    void* const* frames, int frameCount) {
  // Everything below reads the registry WITHOUT its mutex: the crashing
  // thread may hold it, and a handler that blocks on a lock hangs the
  // process instead of dumping. Torn counter reads are acceptable in a
  // post-mortem artifact. Shard/event arrays are walked once with bounds
  // captured up front so a racing registration cannot run us off the end.
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"crash.signal\": %d,\n  \"crash.signalName\": "
                "\"%s\",\n  \"crash.ts_ns\": %llu,\n",
                signo, signame && *signame ? signame : "unknown",
                static_cast<unsigned long long>(nowNs()));
  crashPut(fd, buf);

  Registry& r = registry();
  size_t nShards = r.shards.size();
  if (nShards > 256) nShards = 256;
  ThreadShard* const* shards = r.shards.data();

  crashPut(fd, "  \"counters\": {\n    ");
  bool first = true;
  size_t nCounters = r.counterNames.size();
  if (nCounters > kMaxCounters) nCounters = kMaxCounters;
  for (size_t i = 0; i < nCounters; ++i) {
    unsigned long long v =
        r.retiredCounters[i].load(std::memory_order_relaxed);
    for (size_t s = 0; s < nShards; ++s)
      v += shards[s]->counters[i].load(std::memory_order_relaxed);
    if (!v) continue;
    crashKeyVal(fd, r.counterNames[i].c_str(), v, first);
  }
  size_t nTimers = r.timerNames.size();
  if (nTimers > kMaxTimers) nTimers = kMaxTimers;
  for (size_t i = 0; i < nTimers; ++i) {
    unsigned long long count =
        r.retiredTimers[i].count.load(std::memory_order_relaxed);
    unsigned long long total =
        r.retiredTimers[i].totalNs.load(std::memory_order_relaxed);
    for (size_t s = 0; s < nShards; ++s) {
      count += shards[s]->timers[i].count.load(std::memory_order_relaxed);
      total += shards[s]->timers[i].totalNs.load(std::memory_order_relaxed);
    }
    if (!count) continue;
    std::snprintf(buf, sizeof(buf), "%s.count", r.timerNames[i].c_str());
    crashKeyVal(fd, buf, count, first);
    std::snprintf(buf, sizeof(buf), "%s.ns", r.timerNames[i].c_str());
    crashKeyVal(fd, buf, total, first);
  }
  size_t nHists = r.histNames.size();
  if (nHists > kMaxHistograms) nHists = kMaxHistograms;
  for (size_t i = 0; i < nHists; ++i) {
    unsigned long long count =
        r.hists[i].count.load(std::memory_order_relaxed);
    if (!count) continue;
    std::snprintf(buf, sizeof(buf), "%s.count", r.histNames[i].c_str());
    crashKeyVal(fd, buf, count, first);
    std::snprintf(buf, sizeof(buf), "%s.sum", r.histNames[i].c_str());
    crashKeyVal(fd, buf, r.hists[i].sum.load(std::memory_order_relaxed),
                first);
  }
  crashPut(fd, "\n  },\n");

  // Newest ring-buffer spans (the flight recorder's last seconds).
  crashPut(fd, "  \"events\": [");
  size_t nEvents = r.trace.events.size();
  const TraceBuf::Ev* evs = r.trace.events.data();
  constexpr size_t kCrashEvents = 64;
  size_t start = nEvents > kCrashEvents ? nEvents - kCrashEvents : 0;
  for (size_t k = start; k < nEvents; ++k) {
    crashPut(fd, k == start ? "\n    {\"name\": " : ",\n    {\"name\": ");
    crashPutName(fd, evs[k].name ? evs[k].name : "?");
    crashPut(fd, ", \"cat\": ");
    crashPutName(fd, evs[k].category ? evs[k].category : "?");
    std::snprintf(buf, sizeof(buf),
                  ", \"ts_ns\": %llu, \"dur_ns\": %llu, \"tid\": %u}",
                  static_cast<unsigned long long>(evs[k].startNs),
                  static_cast<unsigned long long>(evs[k].durNs), evs[k].tid);
    crashPut(fd, buf);
  }
  crashPut(fd, "\n  ],\n");

  crashPut(fd, "  \"backtrace\": [");
  for (int i = 0; i < frameCount; ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%p\"", i ? ", " : "", frames[i]);
    crashPut(fd, buf);
  }
  crashPut(fd, "]\n}\n");
}

} // namespace mmx::metrics
