#include "support/metrics.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>

namespace mmx::metrics {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

constexpr size_t kMaxCounters = 256;
constexpr size_t kMaxTimers = 128;
constexpr size_t kMaxTraceEvents = 1u << 20;

struct TimerCell {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> totalNs{0};
  std::atomic<uint64_t> maxNs{0};

  void record(uint64_t ns) {
    count.fetch_add(1, std::memory_order_relaxed);
    totalNs.fetch_add(ns, std::memory_order_relaxed);
    uint64_t prev = maxNs.load(std::memory_order_relaxed);
    while (ns > prev &&
           !maxNs.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
    }
  }
};

/// One thread's shard. Lives until the thread exits, then flushes into the
/// registry's retired totals so finished pool workers keep contributing to
/// later snapshots.
struct ThreadShard {
  std::array<std::atomic<uint64_t>, kMaxCounters> counters{};
  std::array<TimerCell, kMaxTimers> timers{};
  unsigned tid = 0;

  ~ThreadShard();
};

struct TraceBuf {
  struct Ev {
    const char* name;
    const char* category;
    uint64_t startNs;
    uint64_t durNs;
    unsigned tid;
  };
  std::mutex mu;
  std::vector<Ev> events;
  uint64_t dropped = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, uint32_t, std::less<>> counterIds;
  std::vector<std::string> counterNames;
  std::map<std::string, uint32_t, std::less<>> timerIds;
  std::vector<std::string> timerNames;

  std::vector<ThreadShard*> shards; // live threads
  // Totals flushed by exited threads.
  std::array<std::atomic<uint64_t>, kMaxCounters> retiredCounters{};
  std::array<TimerCell, kMaxTimers> retiredTimers{};

  std::atomic<unsigned> nextTid{0};
  TraceBuf trace;

  std::vector<std::pair<std::string, GaugeFn>> gauges;
};

Registry& registry() {
  // Leaked intentionally: shards of detached threads may flush during
  // process teardown, after static destructors would have run.
  static Registry* r = new Registry();
  return *r;
}

ThreadShard::~ThreadShard() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (size_t i = 0; i < kMaxCounters; ++i) {
    uint64_t v = counters[i].load(std::memory_order_relaxed);
    if (v) r.retiredCounters[i].fetch_add(v, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kMaxTimers; ++i) {
    TimerCell& c = timers[i];
    uint64_t n = c.count.load(std::memory_order_relaxed);
    if (!n) continue;
    r.retiredTimers[i].count.fetch_add(n, std::memory_order_relaxed);
    r.retiredTimers[i].totalNs.fetch_add(
        c.totalNs.load(std::memory_order_relaxed), std::memory_order_relaxed);
    uint64_t m = c.maxNs.load(std::memory_order_relaxed);
    uint64_t prev = r.retiredTimers[i].maxNs.load(std::memory_order_relaxed);
    while (m > prev && !r.retiredTimers[i].maxNs.compare_exchange_weak(
                           prev, m, std::memory_order_relaxed)) {
    }
  }
  r.shards.erase(std::remove(r.shards.begin(), r.shards.end(), this),
                 r.shards.end());
}

ThreadShard& shard() {
  thread_local struct Owner {
    ThreadShard* p = nullptr;
    ~Owner() { delete p; }
  } owner;
  if (!owner.p) {
    auto* s = new ThreadShard();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    s->tid = r.nextTid.fetch_add(1, std::memory_order_relaxed);
    r.shards.push_back(s);
    owner.p = s;
  }
  return *owner.p;
}

// Every timestamp in this file derives from steady_clock: wall clocks can
// be stepped (NTP) mid-run, which would produce negative span durations in
// the trace output.
static_assert(std::chrono::steady_clock::is_steady,
              "metrics timestamps require a monotonic clock");

uint64_t processStartNs() {
  static const uint64_t t0 = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return t0;
}

// Touch the anchor at static-init time so nowNs() is relative to (roughly)
// process start even if metrics are first enabled late.
const uint64_t g_anchor = processStartNs();

void appendJsonString(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// ns -> "12.345" microseconds with stable formatting.
std::string usString(uint64_t ns) {
  std::ostringstream o;
  o << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
    << static_cast<char>('0' + (ns % 100) / 10)
    << static_cast<char>('0' + ns % 10);
  return o.str();
}

std::string humanNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull)
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  else if (ns >= 1000000ull)
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  else if (ns >= 1000ull)
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(ns) / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  return buf;
}

} // namespace

void enable(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

uint64_t nowNs() {
  uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - g_anchor;
}

unsigned threadId() { return shard().tid; }

Counter counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counterIds.find(name);
  if (it != r.counterIds.end()) return Counter(it->second);
  if (r.counterNames.size() >= kMaxCounters)
    return Counter(kMaxCounters - 1); // overflow bucket; never expected
  uint32_t id = static_cast<uint32_t>(r.counterNames.size());
  r.counterNames.emplace_back(name);
  r.counterIds.emplace(std::string(name), id);
  return Counter(id);
}

void Counter::add(uint64_t delta) const {
  if (!enabled()) return;
  shard().counters[id_].fetch_add(delta, std::memory_order_relaxed);
}

uint64_t Counter::value() const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  uint64_t v = r.retiredCounters[id_].load(std::memory_order_relaxed);
  for (ThreadShard* s : r.shards)
    v += s->counters[id_].load(std::memory_order_relaxed);
  return v;
}

Timer timer(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.timerIds.find(name);
  if (it != r.timerIds.end()) return Timer(it->second);
  if (r.timerNames.size() >= kMaxTimers) return Timer(kMaxTimers - 1);
  uint32_t id = static_cast<uint32_t>(r.timerNames.size());
  r.timerNames.emplace_back(name);
  r.timerIds.emplace(std::string(name), id);
  return Timer(id);
}

void registerGauge(std::string_view name, GaugeFn fn) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& g : r.gauges)
    if (g.first == name) {
      g.second = fn;
      return;
    }
  r.gauges.emplace_back(std::string(name), fn);
}

void Timer::record(uint64_t ns) const {
  if (!enabled()) return;
  shard().timers[id_].record(ns);
}

void traceSpan(const char* name, const char* category, uint64_t startNs,
               uint64_t durNs) {
  if (!enabled()) return;
  unsigned tid = threadId();
  TraceBuf& t = registry().trace;
  std::lock_guard<std::mutex> lock(t.mu);
  if (t.events.size() >= kMaxTraceEvents) {
    ++t.dropped;
    return;
  }
  t.events.push_back({name, category, startNs, durNs, tid});
}

ScopedTimer::ScopedTimer(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!enabled()) return;
  armed_ = true;
  start_ = nowNs();
}

ScopedTimer::~ScopedTimer() {
  if (!armed_) return;
  uint64_t dur = nowNs() - start_;
  timer(name_).record(dur);
  traceSpan(name_, category_, start_, dur);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (size_t i = 0; i < kMaxCounters; ++i)
    r.retiredCounters[i].store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < kMaxTimers; ++i) {
    r.retiredTimers[i].count.store(0, std::memory_order_relaxed);
    r.retiredTimers[i].totalNs.store(0, std::memory_order_relaxed);
    r.retiredTimers[i].maxNs.store(0, std::memory_order_relaxed);
  }
  for (ThreadShard* s : r.shards) {
    for (size_t i = 0; i < kMaxCounters; ++i)
      s->counters[i].store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < kMaxTimers; ++i) {
      s->timers[i].count.store(0, std::memory_order_relaxed);
      s->timers[i].totalNs.store(0, std::memory_order_relaxed);
      s->timers[i].maxNs.store(0, std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> tlock(r.trace.mu);
  r.trace.events.clear();
  r.trace.dropped = 0;
}

Snapshot snapshot(bool includeZeros) {
  Snapshot out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);

  for (size_t i = 0; i < r.counterNames.size(); ++i) {
    uint64_t v = r.retiredCounters[i].load(std::memory_order_relaxed);
    for (ThreadShard* s : r.shards)
      v += s->counters[i].load(std::memory_order_relaxed);
    if (v || includeZeros) out.counters.push_back({r.counterNames[i], v});
  }
  for (const auto& [name, fn] : r.gauges) {
    uint64_t v = fn();
    if (v || includeZeros) out.counters.push_back({name, v});
  }
  std::sort(out.counters.begin(), out.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });

  for (size_t i = 0; i < r.timerNames.size(); ++i) {
    Snapshot::TimerRow row;
    row.name = r.timerNames[i];
    auto fold = [&row](TimerCell& c) {
      row.count += c.count.load(std::memory_order_relaxed);
      row.totalNs += c.totalNs.load(std::memory_order_relaxed);
      row.maxNs = std::max(row.maxNs, c.maxNs.load(std::memory_order_relaxed));
    };
    fold(r.retiredTimers[i]);
    for (ThreadShard* s : r.shards) fold(s->timers[i]);
    if (row.count || includeZeros) out.timers.push_back(std::move(row));
  }
  std::sort(out.timers.begin(), out.timers.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });

  std::lock_guard<std::mutex> tlock(r.trace.mu);
  out.events.reserve(r.trace.events.size());
  for (const TraceBuf::Ev& e : r.trace.events)
    out.events.push_back({e.name, e.category, e.startNs, e.durNs, e.tid});
  out.droppedEvents = r.trace.dropped;
  return out;
}

std::string renderTimeReport(const Snapshot& s) {
  std::ostringstream out;
  out << "=== time report ===\n";
  if (s.timers.empty()) {
    out << "(no phases recorded)\n";
  } else {
    size_t w = 5;
    for (const auto& t : s.timers) w = std::max(w, t.name.size());
    char head[128];
    std::snprintf(head, sizeof(head), "%-*s %9s %12s %12s %12s\n",
                  static_cast<int>(w), "phase", "count", "total", "avg",
                  "max");
    out << head;
    for (const auto& t : s.timers) {
      char line[192];
      std::snprintf(line, sizeof(line), "%-*s %9llu %12s %12s %12s\n",
                    static_cast<int>(w), t.name.c_str(),
                    static_cast<unsigned long long>(t.count),
                    humanNs(t.totalNs).c_str(),
                    humanNs(t.count ? t.totalNs / t.count : 0).c_str(),
                    humanNs(t.maxNs).c_str());
      out << line;
    }
  }
  // Zero-valued counters are omitted from the snapshot, but the runtime
  // counters perf work steers by always print — their absence should read
  // as "0", not "not instrumented".
  static const char* const kAlwaysShown[] = {
      "kernel.matmul.packedBytes",
      "kernel.matmul.tiles",
      "pool.inlinedDispatches",
  };
  std::vector<Snapshot::CounterRow> rows = s.counters;
  for (const char* name : kAlwaysShown) {
    bool present = std::any_of(rows.begin(), rows.end(),
                               [&](const auto& c) { return c.name == name; });
    if (!present) rows.push_back({name, 0});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  out << "=== counters ===\n";
  size_t w = 0;
  for (const auto& c : rows) w = std::max(w, c.name.size());
  for (const auto& c : rows) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-*s %12llu\n", static_cast<int>(w),
                  c.name.c_str(), static_cast<unsigned long long>(c.value));
    out << line;
  }
  return out.str();
}

std::string renderStatsJson(const Snapshot& s) {
  std::ostringstream out;
  out << "{\n";
  bool first = true;
  auto emit = [&](const std::string& key, uint64_t v) {
    if (!first) out << ",\n";
    first = false;
    out << "  ";
    appendJsonString(out, key);
    out << ": " << v;
  };
  for (const auto& c : s.counters) emit(c.name, c.value);
  for (const auto& t : s.timers) {
    emit(t.name + ".count", t.count);
    emit(t.name + ".ns", t.totalNs);
    emit(t.name + ".max_ns", t.maxNs);
  }
  out << "\n}\n";
  return out.str();
}

std::string renderTraceJson(const Snapshot& s) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : s.events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":";
    appendJsonString(out, e.name);
    out << ",\"cat\":";
    appendJsonString(out, e.category);
    out << ",\"ph\":\"X\",\"ts\":" << usString(e.startNs)
        << ",\"dur\":" << usString(e.durNs) << ",\"pid\":1,\"tid\":" << e.tid
        << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

} // namespace mmx::metrics
