// Diagnostics: errors/warnings/notes carrying source locations. The engine
// collects diagnostics during scanning, parsing, semantic analysis, and
// the modular composability analyses, and can render them against a
// SourceManager.
#pragma once

#include <string>
#include <vector>

#include "support/source.hpp"

namespace mmx {

enum class Severity { Note, Warning, Error };

const char* severityName(Severity s);

/// One reported problem.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceRange range;     // may be invalid for file-level problems
  std::string message;
  /// Name of the language extension (grammar fragment) whose syntax or
  /// semantics produced this diagnostic; empty for host/driver problems.
  std::string extension;
};

/// Renders one diagnostic as "file:line:col: severity: message\n" (the
/// extension name is structured data only; rendering is unchanged from the
/// string-first days). Pass sm = nullptr when no SourceManager is
/// available (locations are then omitted).
std::string renderDiagnostic(const Diagnostic& d, const SourceManager* sm);

/// Renders a diagnostic list (the TranslateResult convenience form).
std::string renderDiagnostics(const std::vector<Diagnostic>& ds,
                              const SourceManager* sm);

/// Accumulates diagnostics. Analyses append; drivers render and decide
/// whether to continue (translation stops after errors, warnings don't).
class DiagnosticEngine {
public:
  void error(SourceRange r, std::string msg) {
    diags_.push_back({Severity::Error, r, std::move(msg), origin()});
  }
  void warning(SourceRange r, std::string msg) {
    diags_.push_back({Severity::Warning, r, std::move(msg), origin()});
  }
  void note(SourceRange r, std::string msg) {
    diags_.push_back({Severity::Note, r, std::move(msg), origin()});
  }

  /// Origin stack: while an extension's handler (or a per-fragment
  /// composition pass) runs, its name is pushed here so every diagnostic
  /// it emits records the originating extension. RAII via OriginScope.
  void pushOrigin(std::string ext) { origins_.push_back(std::move(ext)); }
  void popOrigin() { origins_.pop_back(); }
  const std::string& origin() const {
    static const std::string kNone;
    return origins_.empty() ? kNone : origins_.back();
  }

  class OriginScope {
  public:
    OriginScope(DiagnosticEngine& de, std::string ext) : de_(de) {
      de_.pushOrigin(std::move(ext));
    }
    ~OriginScope() { de_.popOrigin(); }
    OriginScope(const OriginScope&) = delete;
    OriginScope& operator=(const OriginScope&) = delete;

  private:
    DiagnosticEngine& de_;
  };

  bool hasErrors() const;
  size_t errorCount() const;
  const std::vector<Diagnostic>& all() const { return diags_; }
  /// Moves the accumulated diagnostics out (engine is left empty).
  std::vector<Diagnostic> take() { return std::move(diags_); }
  void clear() { diags_.clear(); }

  /// Renders every diagnostic as "file:line:col: severity: message\n".
  std::string render(const SourceManager& sm) const;

private:
  std::vector<Diagnostic> diags_;
  std::vector<std::string> origins_;
};

} // namespace mmx
