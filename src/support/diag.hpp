// Diagnostics: errors/warnings/notes carrying source locations. The engine
// collects diagnostics during scanning, parsing, semantic analysis, and
// the modular composability analyses, and can render them against a
// SourceManager.
#pragma once

#include <string>
#include <vector>

#include "support/source.hpp"

namespace mmx {

enum class Severity { Note, Warning, Error };

/// One reported problem.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceRange range;     // may be invalid for file-level problems
  std::string message;
};

/// Accumulates diagnostics. Analyses append; drivers render and decide
/// whether to continue (translation stops after errors, warnings don't).
class DiagnosticEngine {
public:
  void error(SourceRange r, std::string msg) {
    diags_.push_back({Severity::Error, r, std::move(msg)});
  }
  void warning(SourceRange r, std::string msg) {
    diags_.push_back({Severity::Warning, r, std::move(msg)});
  }
  void note(SourceRange r, std::string msg) {
    diags_.push_back({Severity::Note, r, std::move(msg)});
  }

  bool hasErrors() const;
  size_t errorCount() const;
  const std::vector<Diagnostic>& all() const { return diags_; }
  void clear() { diags_.clear(); }

  /// Renders every diagnostic as "file:line:col: severity: message\n".
  std::string render(const SourceManager& sm) const;

private:
  std::vector<Diagnostic> diags_;
};

} // namespace mmx
