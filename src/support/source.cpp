#include "support/source.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmx {

FileId SourceManager::add(std::string name, std::string text) {
  File f;
  f.name = std::move(name);
  f.text = std::move(text);
  f.lineStarts.push_back(0);
  for (uint32_t i = 0; i < f.text.size(); ++i)
    if (f.text[i] == '\n') f.lineStarts.push_back(i + 1);
  files_.push_back(std::move(f));
  return static_cast<FileId>(files_.size() - 1);
}

std::string_view SourceManager::name(FileId f) const {
  if (f >= files_.size()) throw std::out_of_range("SourceManager::name");
  return files_[f].name;
}

std::string_view SourceManager::text(FileId f) const {
  if (f >= files_.size()) throw std::out_of_range("SourceManager::text");
  return files_[f].text;
}

LineCol SourceManager::lineCol(SourceLoc loc) const {
  if (!loc.valid() || loc.file >= files_.size()) return {};
  const auto& starts = files_[loc.file].lineStarts;
  auto it = std::upper_bound(starts.begin(), starts.end(), loc.offset);
  uint32_t line = static_cast<uint32_t>(it - starts.begin()); // 1-based
  uint32_t col = loc.offset - starts[line - 1] + 1;
  return {line, col};
}

std::string_view SourceManager::snippet(SourceRange r) const {
  if (!r.valid() || r.begin.file >= files_.size()) return {};
  std::string_view t = files_[r.begin.file].text;
  uint32_t b = std::min<uint32_t>(r.begin.offset, t.size());
  uint32_t e = std::min<uint32_t>(r.end, t.size());
  if (e < b) e = b;
  return t.substr(b, e - b);
}

} // namespace mmx
