// A small dynamic bitset used for terminal sets (scanner valid-lookahead
// sets, LALR lookahead sets). Header-only.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace mmx {

/// Fixed-universe dynamic bitset. All operations assume both operands were
/// created with the same universe size.
class DynBitset {
public:
  DynBitset() = default;
  explicit DynBitset(size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  size_t size() const { return nbits_; }

  void set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void clear() { for (auto& w : words_) w = 0; }

  bool any() const {
    for (auto w : words_) if (w) return true;
    return false;
  }

  size_t count() const {
    size_t n = 0;
    for (auto w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// this |= other; returns true if this changed. `other` may have a
  /// smaller universe (extra high bits in `this` are left alone).
  bool merge(const DynBitset& other) {
    bool changed = false;
    size_t n = words_.size() < other.words_.size() ? words_.size()
                                                   : other.words_.size();
    for (size_t i = 0; i < n; ++i) {
      uint64_t nw = words_[i] | other.words_[i];
      if (nw != words_[i]) { words_[i] = nw; changed = true; }
    }
    return changed;
  }

  /// Calls fn(i) for every set bit, ascending.
  template <class Fn> void forEach(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w) {
        unsigned b = static_cast<unsigned>(__builtin_ctzll(w));
        fn(wi * 64 + b);
        w &= w - 1;
      }
    }
  }

  friend bool operator==(const DynBitset& a, const DynBitset& b) {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }

private:
  size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

} // namespace mmx
