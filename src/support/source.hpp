// Source buffers and locations. A SourceManager owns the text of every file
// (or in-memory snippet) handed to a translator and converts byte offsets to
// human-readable line/column pairs for diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mmx {

/// Identifies a buffer registered with a SourceManager.
using FileId = uint32_t;
inline constexpr FileId kNoFile = 0xffffffffu;

/// A byte position within one source buffer.
struct SourceLoc {
  FileId file = kNoFile;
  uint32_t offset = 0;

  bool valid() const { return file != kNoFile; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Half-open byte range [begin, end) within one buffer.
struct SourceRange {
  SourceLoc begin;
  uint32_t end = 0; // byte offset one past the last byte, same file as begin

  bool valid() const { return begin.valid(); }
  uint32_t length() const { return end - begin.offset; }
};

/// 1-based line/column pair, derived on demand.
struct LineCol {
  uint32_t line = 0;
  uint32_t col = 0;
};

/// Owns source text. Buffers are immutable once added.
class SourceManager {
public:
  /// Registers a buffer under the given display name; returns its id.
  FileId add(std::string name, std::string text);

  std::string_view name(FileId f) const;
  std::string_view text(FileId f) const;

  /// Converts an offset to 1-based line/column (O(log #lines)).
  LineCol lineCol(SourceLoc loc) const;

  /// The source text covered by a range.
  std::string_view snippet(SourceRange r) const;

  size_t fileCount() const { return files_.size(); }

private:
  struct File {
    std::string name;
    std::string text;
    std::vector<uint32_t> lineStarts; // byte offset of each line start
  };
  std::vector<File> files_;
};

} // namespace mmx
