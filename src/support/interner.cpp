#include "support/interner.hpp"

#include <cassert>
#include <stdexcept>

namespace mmx {

Symbol Interner::intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return Symbol(it->second);
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), id);
  return Symbol(id);
}

std::string_view Interner::text(Symbol s) const {
  if (!s.valid() || s.id() >= strings_.size())
    throw std::out_of_range("Interner::text: invalid symbol");
  return strings_[s.id()];
}

} // namespace mmx
