// Hardware PMU counters (ISSUE 10 pillar 2): a thin wrapper over Linux
// perf_event_open that samples cycles / instructions / cache-misses /
// branch-misses around kernel spans (rt::matmul wraps each call).
//
// Opt-in: nothing opens until setRequested(true) (mmc --perf-counters) AND
// a scope begins. Counters are calling-thread scoped — pid=0/cpu=-1
// without inherit — so single-threaded kernel runs are exact and
// multi-threaded ones attribute the orchestrating thread's share.
//
// Degrades gracefully: containers and locked-down CI commonly deny the
// syscall (perf_event_paranoid, seccomp) or lack PMU passthrough. The
// first failed open parks the thread's group as unavailable and every
// skipped scope bumps the `pmu.skipped` metrics counter, which baselines
// gate presence-only.
#pragma once

#include <cstdint>

namespace mmx::perf {

/// Process-wide opt-in (mmc --perf-counters / $MMX_PERF_COUNTERS).
void setRequested(bool on);
bool requested();

/// One begin/end sample. `ok` is false when the PMU was unavailable.
struct Sample {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cacheMisses = 0;
  uint64_t branchMisses = 0;
  bool ok = false;
};

/// Arms the calling thread's counter group. Returns false (and records the
/// skip) when PMU access is unavailable; end() must only follow a true
/// begin(). Scopes do not nest.
bool begin();

/// Disarms and returns the deltas since begin().
Sample end();

/// True when this thread has proven the syscall works (diagnostics/tests).
bool available();

} // namespace mmx::perf
