// Pipeline observability (ISSUE 2) and production telemetry (ISSUE 10):
// monotonic scoped timers, named counters, log2-bucketed latency/size
// histograms, and Chrome trace-event spans behind one global registry,
// plus continuous JSONL export and an async-signal-safe crash dump.
//
// Design constraints:
//   - No-op when disabled: every instrumentation entry point is a relaxed
//     atomic load plus a predicted branch; no clocks are read and no
//     allocation happens. bench_forkjoin bounds the disabled overhead.
//   - Thread-local aggregation: counters and timers accumulate into
//     per-thread shards of relaxed atomics (no contention between pool
//     workers); snapshot() sums live shards plus totals flushed by
//     threads that already exited. Histograms use one shared lock-free
//     cell per name (relaxed fetch_add into power-of-two buckets).
//   - Machine-readable: snapshot() renders as a human table
//     (--time-report), a flat JSON object (--stats-json), or Chrome
//     trace-event JSON (--trace-json, viewable in about:tracing/Perfetto).
//     startIntervalExport() streams delta snapshots as JSONL for
//     dashboards; writeCrashJson() dumps the registry from a signal
//     handler without locks or allocation.
//
// Instrumented sites pass string literals (or otherwise immortal strings)
// as names; handles are resolved once per call site:
//   static const metrics::Counter c = metrics::counter("lex.tokens");
//   c.add();
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mmx::metrics {

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/// Master switch. Instrumentation sites test this before doing any work.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void enable(bool on);

/// Zeroes every counter/timer and drops buffered trace events. Names stay
/// registered (handles remain valid).
void reset();

/// Monotonic nanoseconds since process start.
uint64_t nowNs();

/// Small dense id for the calling thread (0 = first thread to ask; pool
/// workers get successive ids). Stable for the thread's lifetime.
unsigned threadId();

/// Handle to a named monotonic counter.
class Counter {
public:
  /// Adds `delta` to the calling thread's shard. No-op while disabled.
  void add(uint64_t delta = 1) const;
  /// Sum over all shards (racing adds may or may not be included).
  uint64_t value() const;

private:
  friend Counter counter(std::string_view name);
  explicit Counter(uint32_t id) : id_(id) {}
  uint32_t id_;
};

/// Finds or registers the counter `name`. Cache the handle in a static.
Counter counter(std::string_view name);

/// Handle to a named duration accumulator (count / total / max).
class Timer {
public:
  /// Records one interval. No-op while disabled.
  void record(uint64_t ns) const;

private:
  friend Timer timer(std::string_view name);
  explicit Timer(uint32_t id) : id_(id) {}
  uint32_t id_;
};

Timer timer(std::string_view name);

/// Handle to a named distribution (ISSUE 10 pillar 1). Values land in
/// log2-spaced buckets (bucket 0 holds zero, bucket b holds
/// [2^(b-1), 2^b)), so one cell covers nanosecond latencies through
/// multi-gigabyte sizes with bounded memory. Recording is lock-free:
/// three relaxed fetch_adds and one CAS-max on a shared cell.
class Histogram {
public:
  /// Folds `value` into the distribution. No-op while disabled.
  void record(uint64_t value) const;

private:
  friend Histogram histogram(std::string_view name);
  explicit Histogram(uint32_t id) : id_(id) {}
  uint32_t id_;
};

/// Finds or registers the histogram `name`. Cache the handle in a static.
Histogram histogram(std::string_view name);

/// Gauge callback: returns the current value of an externally-maintained
/// quantity (live bytes, high-water marks, ...). Unlike counters, gauges
/// are not accumulated here — they are polled once per snapshot(), so the
/// callback must be cheap and safe to call from any thread.
using GaugeFn = uint64_t (*)();

/// Registers `fn` under `name`; its polled value appears among the counter
/// rows of every subsequent snapshot. Registering the same name again
/// replaces the callback. Gauges report even while metrics are disabled
/// (the producer side maintains them unconditionally or not at all).
void registerGauge(std::string_view name, GaugeFn fn);

/// Appends one complete trace span (pre-measured). No-op while disabled.
/// `name` and `category` must outlive the registry (string literals).
void traceSpan(const char* name, const char* category, uint64_t startNs,
               uint64_t durNs);

/// RAII phase timer: records into timer(name) and emits a trace span.
/// Arms itself from enabled() at construction; inert when disabled.
class ScopedTimer {
public:
  explicit ScopedTimer(const char* name, const char* category = "phase");
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
  const char* name_;
  const char* category_;
  uint64_t start_ = 0;
  bool armed_ = false;
};

/// A consistent copy of everything recorded so far.
struct Snapshot {
  struct CounterRow {
    std::string name;
    uint64_t value = 0;
  };
  struct TimerRow {
    std::string name;
    uint64_t count = 0;
    uint64_t totalNs = 0;
    uint64_t maxNs = 0;
  };
  struct HistogramRow {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    // Estimated quantiles: linear interpolation inside the log2 bucket
    // holding the target rank, clamped to the observed max.
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };
  struct TraceEvent {
    std::string name;
    std::string category;
    uint64_t startNs = 0;
    uint64_t durNs = 0;
    unsigned tid = 0;
  };
  std::vector<CounterRow> counters; // name-sorted; zero-valued rows omitted
                                    //   unless snapshot(true)
  std::vector<TimerRow> timers;     // name-sorted; zero-count rows omitted
                                    //   unless snapshot(true)
  std::vector<HistogramRow> histograms; // name-sorted; zero-count rows
                                        //   omitted unless snapshot(true)
  std::vector<TraceEvent> events;   // in emission order
  uint64_t droppedEvents = 0;       // spans beyond the buffer cap; reported
                                    //   as trace.droppedEvents when nonzero
};

/// With `includeZeros` every registered counter and timer appears even when
/// it never fired — analysis consumers (--analyze --stats-json) rely on
/// this so per-pass sections (opt.*, shapecheck.*) are present with
/// explicit zeros instead of silently missing keys.
Snapshot snapshot(bool includeZeros = false);

/// Human-readable table of phase timers, histograms, and counters. Ends
/// with a warning line when trace spans were dropped at the buffer cap.
std::string renderTimeReport(const Snapshot& s);

/// One flat JSON object: counters verbatim, timers as "<name>.ns",
/// "<name>.count", "<name>.max_ns", histograms as "<name>.count",
/// "<name>.sum", "<name>.p50", "<name>.p95", "<name>.p99", "<name>.max",
/// plus "trace.droppedEvents" when spans were dropped.
std::string renderStatsJson(const Snapshot& s);

/// Chrome trace-event JSON ("X" complete events, microsecond timestamps).
std::string renderTraceJson(const Snapshot& s);

// ---- continuous export (ISSUE 10 pillar 4) -------------------------------
//
// A sampler thread wakes every `intervalMs`, takes a snapshot, and appends
// one JSON object per line to `path`: monotonic quantities (counters,
// timer/histogram counts and totals) as deltas since the previous line,
// instantaneous ones (max, quantiles) at their current value, keyed
// exactly like --stats-json plus "export.seq" / "export.ts_ms". mmc wires
// this to $MMX_STATS_INTERVAL_MS / $MMX_STATS_JSONL.

/// Starts the sampler; false when the file cannot be opened, an exporter
/// is already running, or `intervalMs` is zero.
bool startIntervalExport(const std::string& path, unsigned intervalMs);

/// Stops the sampler (no-op when none runs). Always flushes one final
/// delta line so short-lived runs still export at least once.
void stopIntervalExport();

// ---- crash flight recorder (ISSUE 10 pillar 3) ---------------------------

/// Writes a JSON crash payload to `fd`: the signal, every counter / timer
/// / histogram total, the newest trace-ring spans, and `frames` as hex
/// addresses. Built for signal handlers: no locks are taken and nothing is
/// allocated (fixed stack buffers + write(2)), at the cost of racing
/// concurrent recorders — a torn read in a crash dump is acceptable.
/// crash::install() wires this to SIGSEGV/SIGABRT/SIGFPE/SIGBUS.
void writeCrashJson(int fd, int signo, const char* signame,
                    void* const* frames, int frameCount);

namespace detail {
/// Shrinks the trace-ring cap so overflow tests don't need 2^20 spans.
/// Takes effect for subsequent spans; reset() does not restore the cap.
void setTraceCapForTest(size_t cap);
} // namespace detail

} // namespace mmx::metrics
