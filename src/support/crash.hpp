// Crash-safe flight recorder (ISSUE 10 pillar 3): sigaction handlers for
// SIGSEGV/SIGABRT/SIGFPE/SIGBUS that dump the metrics registry — counters,
// timers, histograms, the newest trace-ring spans — plus a backtrace as
// JSON to a pre-configured path, then re-raise with the default
// disposition so the exit status (and core dump, if enabled) is untouched.
//
// The dump path is fixed at install time (no getenv in the handler), the
// handlers run on a dedicated sigaltstack so stack-overflow SIGSEGVs still
// dump, and the writer (metrics::writeCrashJson) takes no locks and
// allocates nothing. backtrace() is primed at install time to force
// libgcc's lazy load outside the handler.
#pragma once

namespace mmx::crash {

/// Installs the handlers writing to `path`. Returns false when `path` is
/// null/empty. Safe to call again (updates the path).
bool install(const char* path);

/// install($MMX_CRASH_JSON); false when the variable is unset or empty.
bool installFromEnv();

bool installed();

} // namespace mmx::crash
