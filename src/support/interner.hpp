// String interner: maps strings to small dense integer Symbols so that
// grammar symbols, attribute names, and identifiers can be compared and
// hashed in O(1).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mmx {

/// An interned string. Symbols produced by the same Interner compare equal
/// iff their source strings are equal. The default-constructed Symbol is
/// invalid and compares unequal to every interned symbol.
class Symbol {
public:
  constexpr Symbol() = default;

  constexpr bool valid() const { return id_ != kInvalid; }
  constexpr uint32_t id() const { return id_; }

  friend constexpr bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend constexpr bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend constexpr bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

private:
  friend class Interner;
  explicit constexpr Symbol(uint32_t id) : id_(id) {}
  static constexpr uint32_t kInvalid = 0xffffffffu;
  uint32_t id_ = kInvalid;
};

/// Owns the string table backing Symbols. Not thread-safe; each Translator
/// owns one Interner and all parsing/analysis for that translator happens on
/// one thread (the generated *programs* run in parallel, not the compiler).
class Interner {
public:
  /// Interns `s`, returning the canonical Symbol for it.
  Symbol intern(std::string_view s);

  /// Returns the string for a symbol interned by this interner.
  std::string_view text(Symbol s) const;

  /// Number of distinct strings interned so far.
  size_t size() const { return strings_.size(); }

private:
  // Deque: growing never moves existing elements, so string_view keys into
  // stored strings stay valid (a vector would move SSO buffers on realloc).
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, uint32_t> index_;
};

} // namespace mmx

namespace std {
template <> struct hash<mmx::Symbol> {
  size_t operator()(mmx::Symbol s) const noexcept { return s.id(); }
};
} // namespace std
