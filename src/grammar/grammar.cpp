#include "grammar/grammar.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace mmx::grammar {

NonterminalId Grammar::addNonterminal(std::string_view name) {
  NonterminalId id;
  if (findNonterminal(name, id)) return id;
  ntNames_.emplace_back(name);
  byLhs_.emplace_back();
  return static_cast<NonterminalId>(ntNames_.size() - 1);
}

bool Grammar::findNonterminal(std::string_view name, NonterminalId& out) const {
  for (NonterminalId i = 0; i < ntNames_.size(); ++i)
    if (ntNames_[i] == name) { out = i; return true; }
  return false;
}

uint32_t Grammar::addProduction(NonterminalId lhs, std::vector<GSym> rhs,
                                std::string name, std::string extension) {
  assert(lhs < ntNames_.size());
  Production p;
  p.id = static_cast<uint32_t>(prods_.size());
  p.lhs = lhs;
  p.rhs = std::move(rhs);
  p.name = std::move(name);
  p.extension = std::move(extension);
  byLhs_[lhs].push_back(p.id);
  prods_.push_back(std::move(p));
  return prods_.back().id;
}

std::string Grammar::symbolName(GSym s) const {
  if (s.isTerm()) return lexSpec_.def(s.idx).name;
  return std::string(ntNames_[s.idx]);
}

void Grammar::computeFirstSets() {
  size_t nTerm = terminalCount();
  size_t nNT = nonterminalCount();
  nullable_.assign(nNT, 0);
  first_.assign(nNT, DynBitset(nTerm + 1));

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : prods_) {
      // nullable
      if (!nullable_[p.lhs]) {
        bool allNullable = true;
        for (const GSym& s : p.rhs) {
          if (s.isTerm() || !nullable_[s.idx]) { allNullable = false; break; }
        }
        if (allNullable) { nullable_[p.lhs] = 1; changed = true; }
      }
      // FIRST
      for (const GSym& s : p.rhs) {
        if (s.isTerm()) {
          if (!first_[p.lhs].test(s.idx)) {
            first_[p.lhs].set(s.idx);
            changed = true;
          }
          break;
        }
        if (first_[p.lhs].merge(first_[s.idx])) changed = true;
        if (!nullable_[s.idx]) break;
      }
    }
  }
}

void Grammar::firstOfSeq(const GSym* seq, size_t len, const DynBitset& tail,
                         DynBitset& out) const {
  if (nullable_.empty())
    throw std::logic_error("Grammar::firstOfSeq before computeFirstSets");
  for (size_t i = 0; i < len; ++i) {
    const GSym& s = seq[i];
    if (s.isTerm()) {
      out.set(s.idx);
      return;
    }
    out.merge(first_[s.idx]);
    if (!nullable_[s.idx]) return;
  }
  out.merge(tail);
}

} // namespace mmx::grammar
