// Context-free grammar model. A composed language is one Grammar built from
// the host fragment plus each chosen extension's fragment (see ext/). The
// parse/ module turns a Grammar into LALR(1) tables; analysis/ runs the
// modular determinism check over per-extension fragments.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lex/scanner.hpp"
#include "support/bitset.hpp"

namespace mmx::grammar {

using NonterminalId = uint32_t;

/// A grammar symbol: terminal (index into the LexSpec) or nonterminal.
struct GSym {
  enum class Kind : uint8_t { Terminal, Nonterminal };
  Kind kind = Kind::Terminal;
  uint32_t idx = 0;

  static GSym term(lex::TerminalId t) { return {Kind::Terminal, t}; }
  static GSym nonterm(NonterminalId n) { return {Kind::Nonterminal, n}; }
  bool isTerm() const { return kind == Kind::Terminal; }
  friend bool operator==(const GSym&, const GSym&) = default;
};

/// One production A -> X1 ... Xn. `name` identifies the production for
/// semantic analysis (node kinds); `extension` records which language
/// fragment contributed it (used by the modular analyses and diagnostics).
struct Production {
  uint32_t id = 0;
  NonterminalId lhs = 0;
  std::vector<GSym> rhs;
  std::string name;
  std::string extension;
};

/// A context-free grammar over a LexSpec's terminals.
///
/// The grammar owns its LexSpec: terminals and productions are added
/// through this interface so extension fragments compose into one
/// consistent id space.
class Grammar {
public:
  // --- construction ---------------------------------------------------
  /// Adds a terminal (see lex::TerminalDef). Returns its id.
  lex::TerminalId addTerminal(lex::TerminalDef def) {
    return lexSpec_.add(std::move(def));
  }

  /// Adds (or finds) a nonterminal by name.
  NonterminalId addNonterminal(std::string_view name);

  /// Looks up a nonterminal; returns true + id when it exists.
  bool findNonterminal(std::string_view name, NonterminalId& out) const;

  /// Adds a production. `name` must be unique across the grammar (checked
  /// by the composer, asserted here).
  uint32_t addProduction(NonterminalId lhs, std::vector<GSym> rhs,
                         std::string name, std::string extension);

  void setStart(NonterminalId s) { start_ = s; }
  NonterminalId start() const { return start_; }

  // --- access -----------------------------------------------------------
  const lex::LexSpec& lexSpec() const { return lexSpec_; }
  size_t terminalCount() const { return lexSpec_.count(); }
  size_t nonterminalCount() const { return ntNames_.size(); }
  std::string_view nonterminalName(NonterminalId n) const { return ntNames_[n]; }
  const std::vector<Production>& productions() const { return prods_; }
  const Production& production(uint32_t id) const { return prods_[id]; }
  /// Productions with the given left-hand side.
  const std::vector<uint32_t>& productionsOf(NonterminalId n) const {
    return byLhs_[n];
  }

  /// Human-readable symbol name for diagnostics.
  std::string symbolName(GSym s) const;

  // --- analysis -----------------------------------------------------------
  /// Computes nullable + FIRST for every nonterminal. Must be called after
  /// the grammar is complete and before first()/firstOfSeq().
  void computeFirstSets();

  bool nullable(NonterminalId n) const { return nullable_[n]; }
  const DynBitset& first(NonterminalId n) const { return first_[n]; }

  /// FIRST of a symbol sequence followed by the terminal-set `tail`
  /// (used for LALR(1) closure: FIRST(beta a)). `out` must be sized to
  /// terminalCount()+1 (the extra column is the end-of-input marker used
  /// by parse/).
  void firstOfSeq(const GSym* seq, size_t len, const DynBitset& tail,
                  DynBitset& out) const;

private:
  lex::LexSpec lexSpec_;
  std::vector<std::string> ntNames_;
  std::vector<Production> prods_;
  std::vector<std::vector<uint32_t>> byLhs_;
  NonterminalId start_ = 0;

  std::vector<uint8_t> nullable_;
  std::vector<DynBitset> first_; // over terminalCount()+1 columns
};

} // namespace mmx::grammar
