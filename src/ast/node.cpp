#include "ast/node.hpp"

#include <sstream>

namespace mmx::ast {

NodePtr makeNode(const grammar::Production* prod, std::vector<NodePtr> kids,
                 SourceRange range) {
  auto n = std::make_shared<Node>();
  n->prod = prod;
  n->kids = std::move(kids);
  n->range = range;
  for (auto& k : n->kids) k->parent = n.get();
  return n;
}

NodePtr makeLeaf(const lex::Token& tok) {
  auto n = std::make_shared<Node>();
  n->token = tok;
  n->range = tok.range;
  return n;
}

NodePtr cloneTree(const NodePtr& n) {
  if (n->isToken()) return makeLeaf(n->token);
  std::vector<NodePtr> kids;
  kids.reserve(n->kids.size());
  for (const auto& k : n->kids) kids.push_back(cloneTree(k));
  return makeNode(n->prod, std::move(kids), n->range);
}

NodePtr findFirst(const NodePtr& n, std::string_view name) {
  NodePtr found;
  preorder(n, [&](const NodePtr& x) {
    if (found) return false;
    if (x->is(name)) { found = x; return false; }
    return true;
  });
  return found;
}

std::vector<NodePtr> findAll(const NodePtr& n, std::string_view name) {
  std::vector<NodePtr> out;
  preorder(n, [&](const NodePtr& x) {
    if (x->is(name)) out.push_back(x);
    return true;
  });
  return out;
}

static void sexpr(const NodePtr& n, std::ostringstream& out) {
  if (n->isToken()) {
    out << '\'' << n->text() << '\'';
    return;
  }
  out << '(' << n->prod->name;
  for (const auto& k : n->kids) {
    out << ' ';
    sexpr(k, out);
  }
  out << ')';
}

std::string toSexpr(const NodePtr& n) {
  std::ostringstream out;
  sexpr(n, out);
  return out.str();
}

} // namespace mmx::ast
