// Extensible syntax trees. The parser builds one generic Node per reduced
// production (token leaves wrap scanned tokens); all later phases — the
// attribute-grammar engine, semantic analysis, lowering — work on these
// trees and dispatch on production names. This mirrors Silver: extensions
// add productions, and semantics attach to productions by name.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "grammar/grammar.hpp"
#include "lex/scanner.hpp"
#include "attr/store.hpp"

namespace mmx::ast {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// A parse/abstract syntax tree node.
///
/// Invariants: `prod == nullptr` iff the node is a token leaf; children's
/// `parent` pointers are maintained by the factories below; trees are
/// immutable after construction (attribute evaluation only touches the
/// mutable attribute store).
class Node {
public:
  const grammar::Production* prod = nullptr; // null => token leaf
  lex::Token token;                          // leaf payload
  std::vector<NodePtr> kids;
  Node* parent = nullptr;
  SourceRange range;

  /// Attribute slots (memoized demand evaluation); see attr/.
  mutable attr::AttrStore store;

  bool isToken() const { return prod == nullptr; }

  /// Production name for interior nodes, terminal name for leaves is not
  /// tracked here — leaves are matched positionally by the semantics.
  std::string_view kind() const {
    return prod ? std::string_view(prod->name) : std::string_view("<token>");
  }

  /// True when this node was produced by production `name`.
  bool is(std::string_view name) const { return prod && prod->name == name; }

  /// i-th child (bounds-checked).
  const NodePtr& child(size_t i) const { return kids.at(i); }

  /// Token text for leaves.
  std::string_view text() const { return token.text; }

  size_t arity() const { return kids.size(); }
};

/// Creates an interior node and wires children's parent pointers.
/// The children become part of the new tree: a child still attached to
/// another tree would be re-parented, so clone subtrees you share (see
/// cloneTree) — higher-order attribute equations in particular must not
/// splice the original program tree into the trees they build.
NodePtr makeNode(const grammar::Production* prod, std::vector<NodePtr> kids,
                 SourceRange range);

/// Deep-copies a tree (fresh attribute stores, parent of the copy unset).
NodePtr cloneTree(const NodePtr& n);

/// Creates a token leaf.
NodePtr makeLeaf(const lex::Token& tok);

/// Re-parents `root` as a detached tree (used for higher-order attribute
/// values: trees built during evaluation have no parent until seeded).
inline void detach(const NodePtr& root) { root->parent = nullptr; }

/// Depth-first preorder visit. `fn` returns false to prune the subtree.
template <class Fn> void preorder(const NodePtr& n, Fn&& fn) {
  if (!fn(n)) return;
  for (const auto& k : n->kids) preorder(k, fn);
}

/// Finds the first descendant (including self) with production `name`.
NodePtr findFirst(const NodePtr& n, std::string_view name);

/// Collects every descendant (including self) with production `name`.
std::vector<NodePtr> findAll(const NodePtr& n, std::string_view name);

/// Renders the tree as an s-expression of production names and token text
/// (tests assert against this).
std::string toSexpr(const NodePtr& n);

} // namespace mmx::ast
