// Quickstart: compose a translator from the host language plus the matrix
// extension, translate a tiny extended-C program, inspect the generated
// loop IR and the emitted plain C, and run it.
//
//   ./build/examples/quickstart
#include <iostream>

#include "driver/translator.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "interp/interp.hpp"
#include "ir/cemit.hpp"

static const char* kProgram = R"(
// Extended C: the with-loop builds a multiplication table in parallel.
int main() {
  int n = 5;
  Matrix int <2> table = with ([0,0] <= [i,j] < [n,n])
      genarray([n,n], (i + 1) * (j + 1));
  printInt(table[4, 4]);
  printInt(table[2, 3]);
  printFloat(with ([0,0] <= [i,j] < [n,n]) fold(+, 0.0, table[i,j]) / 25);
  return 0;
}
)";

int main() {
  using namespace mmx;

  // 1. Pick extensions like libraries and compose a custom translator.
  driver::Translator t;
  t.addExtension(ext_matrix::matrixExtension());
  if (!t.compose()) {
    std::cerr << t.renderComposeDiagnostics();
    return 1;
  }
  std::cout << "composed grammar: " << t.grammar().productions().size()
            << " productions, " << t.grammar().terminalCount()
            << " terminals, " << t.parser()->tables().stateCount()
            << " LALR(1) states, 0 conflicts\n\n";

  // 2. Translate extended C down to the plain-parallel-C level.
  auto res = t.translate("quickstart.xc", kProgram);
  if (!res.ok) {
    std::cerr << res.renderDiagnostics();
    return 1;
  }
  std::cout << "---- generated loop IR ----\n" << ir::dump(*res.module);

  // 3. The same lowering prints as plain C (first lines shown).
  auto c = ir::emitC(*res.module);
  if (c.ok) {
    std::string snippet = c.code.substr(c.code.find("int xc_main"));
    size_t cut = snippet.find("goto mmx_cleanup");
    std::cout << "---- emitted C (xc_main) ----\n"
              << snippet.substr(0, cut) << "  ...\n\n";
  }

  // 4. Or execute directly on the interpreter + fork-join pool.
  auto pool = rt::makeExecutor(rt::ExecutorKind::ForkJoin, 4);
  interp::Machine vm(*res.module, *pool);
  int code = vm.runMain();
  std::cout << "---- program output (4 threads) ----\n" << vm.output();
  return code;
}
