// §V playground: the same with-loop computation under different
// programmer-specified transformation pipelines — inspect the rewritten
// loop nests, the emitted C, and measure the effect of each stage.
//
//   ./build/examples/transform_playground [n p]
#include <chrono>
#include <iostream>

#include "driver/translator.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "ext_transform/transform_ext.hpp"
#include "interp/interp.hpp"
#include "ir/cemit.hpp"

static std::string program(int64_t m, int64_t n, int64_t p,
                           const std::string& clauses) {
  return R"(
int main() {
  Matrix float <3> mat = synthSsh()" +
         std::to_string(m) + ", " + std::to_string(n) + ", " +
         std::to_string(p) + R"(, 42, 4);
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int pp = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
    genarray([m,n],
      (with ([0] <= [k] < [pp]) fold(+, 0.0, mat[i,j,k])) / pp))" +
         clauses + R"(;
  printFloat(means[0, 0]);
  return 0;
}
)";
}

int main(int argc, char** argv) {
  using namespace mmx;
  int64_t n = argc > 1 ? std::stoll(argv[1]) : 256;
  int64_t p = argc > 2 ? std::stoll(argv[2]) : 64;
  const int64_t m = 32;

  driver::Translator t;
  t.addExtension(ext_matrix::matrixExtension());
  t.addExtension(ext_transform::transformExtension());
  // Transformations put the programmer in charge: disable the automatic
  // parallelization so each stage's effect is the user's own.
  driver::TranslateOptions opts;
  opts.autoParallel = false;
  if (!t.compose(opts)) {
    std::cerr << t.renderComposeDiagnostics();
    return 1;
  }

  struct Stage {
    const char* name;
    const char* clauses;
  };
  const Stage stages[] = {
      {"baseline (no transform)", ""},
      {"split j by 4", " transform { split j by 4, jin, jout; }"},
      {"split + vectorize jin",
       " transform { split j by 4, jin, jout; vectorize jin; }"},
      {"split + vectorize + parallelize i (Fig. 9)",
       " transform { split j by 4, jin, jout; vectorize jin; "
       "parallelize i; }"},
      {"tile i, j by 8, 8", " transform { tile i, j by 8, 8; }"},
  };

  std::cout << "temporal mean over a " << m << "x" << n << "x" << p
            << " field; 4-thread pool; times are per full evaluation\n\n";

  double base = 0;
  for (const Stage& st : stages) {
    auto res = t.translate("fig9.xc", program(m, n, p, st.clauses));
    if (!res.ok) {
      std::cerr << res.renderDiagnostics();
      return 1;
    }
    auto pool = rt::makeExecutor(rt::ExecutorKind::ForkJoin, 4);
    interp::Machine vm(*res.module, *pool);
    vm.runMain(); // warm-up + correctness
    std::string first = vm.output();
    vm.clearOutput();
    auto t0 = std::chrono::steady_clock::now();
    vm.runMain();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (base == 0) base = ms;
    std::cout << "  " << st.name << ": " << ms << " ms  ("
              << base / ms << "x vs baseline), means[0,0]=" << first;
  }

  // Show the Fig. 10/11 artifacts for the full pipeline.
  auto res =
      t.translate("fig9.xc", program(8, 16, 8, stages[3].clauses));
  std::cout << "\n---- loop IR after split+vectorize+parallelize ----\n";
  std::string irText = ir::dump(*res.module);
  size_t from = irText.find("#pragma parallel");
  std::cout << irText.substr(from == std::string::npos ? 0 : from - 2, 900)
            << "  ...\n";
  return 0;
}
