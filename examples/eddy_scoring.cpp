// The §IV ocean-eddy application, end to end: Fig. 8's trough-scoring
// program (tuples + matrices + matrixMap) runs over a synthetic SSH field
// with known eddy tracks; the top-scoring locations are checked against
// the ground truth.
//
//   ./build/examples/eddy_scoring [nlat nlon ntime threads]
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "driver/translator.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "interp/interp.hpp"
#include "runtime/matio.hpp"
#include "runtime/ssh_synth.hpp"

static std::string program(int64_t nlat, int64_t nlon, int64_t ntime,
                           const std::string& out) {
  return R"(
// Fig. 8: score every point's SSH time series by trough area.
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {
  int beginning = i;
  int n = dimSize(ts, 0);
  while (i + 1 < n && ts[i] >= ts[i + 1]) { i = i + 1; }  // walk downwards
  while (i + 1 < n && ts[i] < ts[i + 1]) { i = i + 1; }   // walk upwards
  return (ts[beginning : i], beginning, i);
}

Matrix float <1> computeArea(Matrix float <1> areaOfInterest) {
  float y1 = areaOfInterest[0];
  float y2 = areaOfInterest[end];
  int x1 = 0;
  int x2 = dimSize(areaOfInterest, 0) - 1;
  float slope = 0.0;
  if (x2 > x1) { slope = (y1 - y2) / ((float)(x1 - x2)); }
  float b = y1 - slope * x1;
  Matrix float <1> Line = (x1 :: x2) * slope + b;
  float area = with ([0] <= [q] < [dimSize(Line, 0)])
      fold(+, 0.0, Line[q] - areaOfInterest[q]);
  return with ([0] <= [q] < [dimSize(Line, 0)])
      genarray([dimSize(Line, 0)], area);
}

Matrix float <1> scoreTS(Matrix float <1> ts) {
  Matrix float <1> scores = init(Matrix float <1>, dimSize(ts, 0));
  int i = 0;
  int n = dimSize(ts, 0);
  while (i + 1 < n && ts[i] < ts[i + 1]) { i = i + 1; }   // trimming
  Matrix float <1> trough = init(Matrix float <1>, 1);
  int beginning = 0;
  while (i < n - 1) {
    (trough, beginning, i) = getTrough(ts, i);
    if (i <= beginning) { return scores; }
    scores[beginning : i] = computeArea(trough);
  }
  return scores;
}

int main() {
  Matrix float <3> data = synthSsh()" +
         std::to_string(nlat) + ", " + std::to_string(nlon) + ", " +
         std::to_string(ntime) + R"(, 2026, 8);
  Matrix float <3> scores = matrixMap(scoreTS, data, [2]);
  writeMatrix(")" + out + R"(", scores);
  return 0;
}
)";
}

int main(int argc, char** argv) {
  using namespace mmx;
  int64_t nlat = argc > 1 ? std::stoll(argv[1]) : 48;
  int64_t nlon = argc > 2 ? std::stoll(argv[2]) : 48;
  int64_t ntime = argc > 3 ? std::stoll(argv[3]) : 96;
  unsigned threads = argc > 4 ? std::stoul(argv[4]) : 4;

  driver::Translator t;
  t.addExtension(ext_matrix::matrixExtension());
  if (!t.compose()) {
    std::cerr << t.renderComposeDiagnostics();
    return 1;
  }
  std::string out = "/tmp/temporal_scores.mmx";
  auto res = t.translate("fig8.xc", program(nlat, nlon, ntime, out));
  if (!res.ok) {
    std::cerr << res.renderDiagnostics();
    return 1;
  }

  auto pool = rt::makeExecutor(rt::ExecutorKind::ForkJoin, threads);
  interp::Machine vm(*res.module, *pool);
  auto t0 = std::chrono::steady_clock::now();
  vm.runMain();
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  std::cout << "scored " << nlat << "x" << nlon << " time series of length "
            << ntime << " on " << threads << " threads in " << ms << " ms\n";

  // Rank locations by their best trough score; check the top ones against
  // the synthetic ground truth (eddy tracks are known).
  rt::Matrix scores = rt::readMatrixFile(out);
  rt::SshParams p;
  p.nlat = nlat;
  p.nlon = nlon;
  p.ntime = ntime;
  p.seed = 2026;
  p.numEddies = 8;
  rt::Matrix truth = rt::eddyGroundTruth(p, 2.0f);

  struct Loc {
    float score;
    int64_t ij;
  };
  std::vector<Loc> locs;
  for (int64_t ij = 0; ij < nlat * nlon; ++ij) {
    float best = 0;
    for (int64_t k = 0; k < ntime; ++k)
      best = std::max(best, scores.f32()[ij * ntime + k]);
    locs.push_back({best, ij});
  }
  std::sort(locs.begin(), locs.end(),
            [](const Loc& a, const Loc& b) { return a.score > b.score; });

  int hits = 0;
  const int kTop = 20;
  std::cout << "top-" << kTop << " scoring locations:\n";
  for (int r = 0; r < kTop; ++r) {
    int64_t ij = locs[r].ij;
    bool hit = false;
    for (int64_t k = 0; k < ntime; ++k)
      if (truth.boolean()[ij * ntime + k]) hit = true;
    hits += hit;
    if (r < 5)
      std::cout << "  (" << ij / nlon << ", " << ij % nlon << ") score "
                << locs[r].score << (hit ? "  [real eddy]\n" : "  [noise]\n");
  }
  std::cout << hits << "/" << kTop
            << " top-scoring locations sit on true eddy tracks\n";
  return hits >= kTop / 2 ? 0 : 1;
}
