// The paper's recurring example (Fig. 1): per-point temporal mean of sea
// surface height, written in extended C, auto-parallelized, validated
// against the native oracle, and timed across thread counts.
//
//   ./build/examples/temporal_mean [nlat nlon ntime]
#include <chrono>
#include <iostream>

#include "driver/translator.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "interp/interp.hpp"
#include "runtime/kernels.hpp"
#include "runtime/matio.hpp"
#include "runtime/ssh_synth.hpp"

static std::string program(int64_t nlat, int64_t nlon, int64_t ntime,
                           const std::string& out) {
  return R"(
int main() {
  Matrix float <3> mat = synthSsh()" +
         std::to_string(nlat) + ", " + std::to_string(nlon) + ", " +
         std::to_string(ntime) + R"(, 42, 6);
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
    genarray([m,n],
      (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])) / p);
  writeMatrix(")" + out + R"(", means);
  return 0;
}
)";
}

int main(int argc, char** argv) {
  using namespace mmx;
  int64_t nlat = argc > 1 ? std::stoll(argv[1]) : 90;
  int64_t nlon = argc > 2 ? std::stoll(argv[2]) : 180;
  int64_t ntime = argc > 3 ? std::stoll(argv[3]) : 64;

  driver::Translator t;
  t.addExtension(ext_matrix::matrixExtension());
  if (!t.compose()) {
    std::cerr << t.renderComposeDiagnostics();
    return 1;
  }
  std::string out = "/tmp/temporal_means.mmx";
  auto res = t.translate("fig1.xc", program(nlat, nlon, ntime, out));
  if (!res.ok) {
    std::cerr << res.renderDiagnostics();
    return 1;
  }

  std::cout << "SSH field: " << nlat << "x" << nlon << "x" << ntime
            << " (synthetic; the paper used 721x1440x954 satellite data)\n";

  double base = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::unique_ptr<rt::Executor> exec = rt::makeExecutor(
        threads == 1 ? rt::ExecutorKind::Serial : rt::ExecutorKind::ForkJoin,
        threads);
    interp::Machine vm(*res.module, *exec);
    auto t0 = std::chrono::steady_clock::now();
    vm.runMain();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (threads == 1) base = ms;
    std::cout << "  threads=" << threads << "  " << ms << " ms  (speedup "
              << base / ms << "x)\n";
  }

  // Validate against the native kernel.
  rt::SshParams p;
  p.nlat = nlat;
  p.nlon = nlon;
  p.ntime = ntime;
  p.numEddies = 6;
  rt::Matrix ssh = rt::synthesizeSsh(p);
  rt::SerialExecutor ser;
  rt::Matrix sums, expect;
  rt::sumInnermost3D(ser, ssh, sums, true);
  rt::ewBinaryScalarF(ser, rt::BinOp::Div, sums,
                      static_cast<float>(ntime), expect, true);
  rt::Matrix got = rt::readMatrixFile(out);
  std::cout << (got.equals(expect, 1e-3f)
                    ? "validation: extended-C means match the native oracle\n"
                    : "validation: MISMATCH against the native oracle!\n");
  return got.equals(expect, 1e-3f) ? 0 : 1;
}
