// IR-lint showcase for `mmc --analyze`: `seed` may be read before it is
// assigned, and the first store to `total` is dead.
int main() {
  int seed;
  int total;
  total = seed + 1;
  total = 5;
  printInt(total);
  return 0;
}
