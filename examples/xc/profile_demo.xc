// Profiling walkthrough for `mmc --instrument` (see README): two parallel
// with-loops build the operands, a matmul combines them, and a fold
// reduces the product. Uses only file-free builtins, so it works with
// --emit-c — compile the output with OpenMP and run it under
// MMX_PROF_JSON/MMX_PROF_TRACE to get runtime stats and a Chrome trace
// with spans attributed back to the lines below.
int main() {
  int n = 96;
  Matrix float <2> a = init(Matrix float <2>, n, n);
  Matrix float <2> b = init(Matrix float <2>, n, n);
  a = with ([0,0] <= [i,j] < [n,n]) genarray([n,n], i * 0.5 + j * 0.25);
  b = with ([0,0] <= [i,j] < [n,n]) genarray([n,n], (i + 1) * 1.0 / (j + 1));
  Matrix float <2> c = a * b;
  float total = with ([0,0] <= [x,y] < [n,n]) fold(+, 0.0, c[x, y]);
  printFloat(total / (n * n));
  return 0;
}
