// A `parallelize` clause aimed at the fold accumulator loop: the race
// analysis classifies loop k as a reduction, warns, and demotes it, so
// the program still prints the serial result. Under --strict-parallel
// this is a hard error.
int main() {
  Matrix float <3> mat = synthSsh(6, 16, 12, 5, 2);
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
    genarray([m,n],
      (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])) / p)
    transform { parallelize k; };
  printFloat(with ([0,0] <= [x,y] < [m,n]) fold(+, 0.0, means[x,y]));
  return 0;
}
