// Fig. 9: the temporal mean with explicit transform clauses — split the
// j loop, vectorize the inner strip, unroll the depth loop, swap the
// tile loops, and parallelize the i loop. Every clause is provably
// legal (the nest carries no dependence), so `--analyze` reports the
// nest as safe and the pragmas survive enforcement — including under
// --strict-transform.
int main() {
  Matrix float <3> mat = synthSsh(6, 16, 12, 5, 2);
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
    genarray([m,n],
      (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])) / p)
    transform {
      split j by 4, jin, jout;
      vectorize jin;
      unroll k by 2;
      interchange i, jout;
      parallelize i;
    };
  printFloat(with ([0,0] <= [x,y] < [m,n]) fold(+, 0.0, means[x,y]));
  return 0;
}
