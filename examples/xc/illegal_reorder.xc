// A `reorder` clause that reverses a loop-carried dependence: relax()
// advances the recurrence v[i+1] = f(v[i]), so iteration (i,j) writes
// the element iteration (i+1,j') reads — a dependence carried by i with
// distance (1,*). Making j the outer loop runs some (i+1,j') before
// (i,j), reversing it, so the dependence verifier rejects the clause
// and names the store/load pair as witness. The default -Wtransform
// mode warns (the clause still applies); under --strict-transform this
// program fails to compile with exit code 2.
float relax(Matrix float <1> v, int i) {
  v[i + 1] = v[i] * 0.5 + 1.0;
  return v[i + 1];
}

int main() {
  Matrix float <1> v = with ([0] <= [k] < [8]) genarray([8], (float)k);
  Matrix float <2> b = init(Matrix float <2>, 5, 7);
  b = with ([0,0] <= [i,j] < [5,7])
      genarray([5,7], relax(v, i) + (float)j)
      transform { reorder j, i; };
  printFloat(with ([0,0] <= [x,y] < [5,7]) fold(+, 0.0, b[x,y]));
  return 0;
}
