// Fig. 1: per-point temporal mean of synthetic sea-surface-height data.
// The genarray nest auto-parallelizes; the inner fold is a reduction and
// runs serially. Try: mmc examples/xc/temporal_mean.xc --analyze
int main() {
  Matrix float <3> mat = synthSsh(12, 24, 16, 42, 6);
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
    genarray([m,n],
      (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])) / p);
  printFloat(with ([0,0] <= [x,y] < [m,n]) fold(+, 0.0, means[x,y]));
  return 0;
}
