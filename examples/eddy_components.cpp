// Fig. 4's workload: per-time-step connected-component labeling of
// thresholded SSH, plus the §IV iterative-threshold eddy detector, with
// detection quality measured against the synthetic ground truth.
//
//   ./build/examples/eddy_components [nlat nlon ntime]
#include <iostream>

#include "driver/translator.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "interp/interp.hpp"
#include "runtime/conncomp.hpp"
#include "runtime/matio.hpp"
#include "runtime/ssh_synth.hpp"

static std::string program(int64_t nlat, int64_t nlon, int64_t ntime,
                           const std::string& out) {
  return R"(
// Fig. 4: label connected components of the thresholded field per step.
Matrix int <2> connCompAt(Matrix float <2> ssh) {
  Matrix bool <2> binary = ssh < -0.6;
  Matrix int <2> labels = connComp(binary);
  return labels;
}

int main() {
  Matrix float <3> ssh = synthSsh()" +
         std::to_string(nlat) + ", " + std::to_string(nlon) + ", " +
         std::to_string(ntime) + R"(, 7, 5);
  Matrix int <3> labels = init(Matrix int <3>,
      dimSize(ssh, 0), dimSize(ssh, 1), dimSize(ssh, 2));
  for (int t = 0; t < dimSize(ssh, 2); t++) {
    labels[:, :, t] = connCompAt(ssh[:, :, t]);
  }
  writeMatrix(")" + out + R"(", labels);
  return 0;
}
)";
}

int main(int argc, char** argv) {
  using namespace mmx;
  int64_t nlat = argc > 1 ? std::stoll(argv[1]) : 64;
  int64_t nlon = argc > 2 ? std::stoll(argv[2]) : 64;
  int64_t ntime = argc > 3 ? std::stoll(argv[3]) : 24;

  driver::Translator t;
  t.addExtension(ext_matrix::matrixExtension());
  if (!t.compose()) {
    std::cerr << t.renderComposeDiagnostics();
    return 1;
  }
  std::string out = "/tmp/eddy_labels.mmx";
  auto res = t.translate("fig4.xc", program(nlat, nlon, ntime, out));
  if (!res.ok) {
    std::cerr << res.renderDiagnostics();
    return 1;
  }
  auto pool = rt::makeExecutor(rt::ExecutorKind::ForkJoin, 4);
  interp::Machine vm(*res.module, *pool);
  vm.runMain();

  rt::Matrix labels = rt::readMatrixFile(out);
  rt::SshParams p;
  p.nlat = nlat;
  p.nlon = nlon;
  p.ntime = ntime;
  p.seed = 7;
  p.numEddies = 5;
  rt::Matrix truth = rt::eddyGroundTruth(p, 1.5f);

  // Detection quality: how many labeled cells coincide with true eddies?
  int64_t labeled = 0, correct = 0, truthCells = 0;
  for (int64_t i = 0; i < labels.size(); ++i) {
    bool lab = labels.i32()[i] != 0;
    bool tru = truth.boolean()[i] != 0;
    labeled += lab;
    truthCells += tru;
    correct += (lab && tru);
  }
  std::cout << "threshold -0.6 labeling over " << ntime << " steps:\n"
            << "  labeled cells:        " << labeled << "\n"
            << "  true eddy cells:      " << truthCells << "\n"
            << "  precision:            "
            << (labeled ? 100.0 * correct / labeled : 0) << "%\n";

  // The §IV iterative-threshold detector with size criteria, on one step.
  rt::Matrix slice = rt::Matrix::zeros(rt::Elem::F32, {nlat, nlon});
  rt::Matrix ssh = rt::synthesizeSsh(p);
  int64_t tmid = ntime / 2;
  for (int64_t i = 0; i < nlat; ++i)
    for (int64_t j = 0; j < nlon; ++j)
      slice.f32()[i * nlon + j] = ssh.f32()[(i * nlon + j) * ntime + tmid];
  rt::Matrix det = rt::detectEddies2D(slice, -1.6f, -0.3f, 0.1f, 4, 400);
  int64_t detCells = 0, detHit = 0;
  for (int64_t i = 0; i < det.size(); ++i) {
    if (!det.i32()[i]) continue;
    ++detCells;
    if (truth.boolean()[i * ntime + tmid]) ++detHit;
  }
  std::cout << "iterative-threshold detector at t=" << tmid << ": "
            << detCells << " cells, "
            << (detCells ? 100.0 * detHit / detCells : 0)
            << "% on true eddies\n";
  return 0;
}
