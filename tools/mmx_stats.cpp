// mmx-stats: merge / diff / gate the observability JSON the toolchain
// emits (mmc --stats-json/--trace-json, MMX_STATS_JSON bench runs,
// instrumented programs' MMX_PROF_JSON/MMX_PROF_TRACE, and the CI
// google-benchmark reports).
//
//   mmx-stats merge OUT IN...          traces -> one timeline; stats ->
//                                      one object (later files win)
//   mmx-stats diff BASE CURRENT        print per-metric deltas, one
//                                      name-sorted listing; exit 2 when a
//                                      baseline metric is missing
//   mmx-stats check BASE CURRENT       exit 1 when CURRENT regresses past
//       [--telemetry]                  tolerance, 2 when a baseline metric
//       [--tol PREFIX=REL]...          vanished (schema mismatch)
//       [--default-tol REL]            (REL 0.25 = 25%; later rules win;
//                                      REL < 0 = presence-only; PREFIX may
//                                      be *SUFFIX to match name endings)
//   mmx-stats jsonl FILE               validate a continuous-export JSONL
//                                      stream ($MMX_STATS_INTERVAL_MS):
//                                      every line an object, export.seq
//                                      strictly increasing
//
// The default tolerance is 0 (exact), right for deterministic counters.
// Wall-clock metrics compared across machines should be presence-only
// (--default-tol -1): a vanished benchmark still fails, values don't.
// --telemetry preloads presence-only rules for the volatile telemetry rows
// (histogram quantiles, PMU samples, per-thread busy times) so baselines
// can pin the histogram *schema* — counts stay exact — without pinning
// latencies.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "statslib.hpp"

namespace {

using namespace mmx::stats;

bool loadJson(const std::string& path, Json& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "mmx-stats: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  if (!parseJson(ss.str(), out, err)) {
    std::cerr << "mmx-stats: " << path << ": " << err << "\n";
    return false;
  }
  return true;
}

int usage() {
  std::cerr << "usage: mmx-stats merge OUT IN...\n"
               "       mmx-stats diff BASE CURRENT\n"
               "       mmx-stats check BASE CURRENT [--telemetry] "
               "[--tol PREFIX=REL]... [--default-tol REL]\n"
               "       mmx-stats jsonl FILE\n";
  return 2;
}

int cmdMerge(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  std::vector<Json> docs(args.size() - 1);
  for (size_t i = 1; i < args.size(); ++i)
    if (!loadJson(args[i], docs[i - 1])) return 1;

  Json merged;
  if (isTrace(docs.front())) {
    merged = mergeTraces(docs);
  } else {
    // Stats merge: union of the flat objects, later files winning — the
    // shape used to put a compile-time stats file and a runtime
    // MMX_PROF_JSON dump into one report.
    merged.kind = Json::Kind::Obj;
    std::map<std::string, Json> byKey;
    std::vector<std::string> order;
    for (const Json& d : docs) {
      if (d.kind != Json::Kind::Obj) {
        std::cerr << "mmx-stats: merge inputs must all be objects\n";
        return 1;
      }
      for (const auto& [k, v] : d.obj) {
        if (!byKey.count(k)) order.push_back(k);
        byKey[k] = v;
      }
    }
    std::sort(order.begin(), order.end());
    for (const std::string& k : order) merged.obj.emplace_back(k, byKey[k]);
  }

  std::ofstream out(args[0]);
  if (!out) {
    std::cerr << "mmx-stats: cannot write " << args[0] << "\n";
    return 1;
  }
  out << render(merged) << "\n";
  return 0;
}

int cmdDiff(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  Json base, cur;
  if (!loadJson(args[0], base) || !loadJson(args[1], cur)) return 1;
  DiffResult r = diff(flatten(base), flatten(cur));
  // One merged, name-sorted listing: deltas and exclusives interleave so
  // the report reads like the union keyspace, not three separate tables.
  std::map<std::string, std::string> rows;
  char line[256];
  for (const MetricDelta& d : r.common) {
    std::snprintf(line, sizeof(line), "%-56s %16.6g %16.6g %+8.2f%%",
                  d.name.c_str(), d.base, d.current, d.relative() * 100);
    rows[d.name] = line;
  }
  for (const std::string& k : r.onlyInBase) {
    std::snprintf(line, sizeof(line), "%-56s only in %s", k.c_str(),
                  args[0].c_str());
    rows[k] = line;
  }
  for (const std::string& k : r.onlyInCurrent) {
    std::snprintf(line, sizeof(line), "%-56s only in %s", k.c_str(),
                  args[1].c_str());
    rows[k] = line;
  }
  for (const auto& [name, text] : rows) std::printf("%s\n", text.c_str());
  return diffExitCode(r);
}

int cmdCheck(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  std::vector<TolRule> rules;
  double defaultTol = 0;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= args.size()) {
        std::cerr << "mmx-stats: " << flag << " requires a value\n";
        return nullptr;
      }
      return args[++i].c_str();
    };
    if (a == "--telemetry") {
      // Prepend so explicit --tol rules still win (later rules override).
      std::vector<TolRule> t = telemetryTolRules();
      rules.insert(rules.begin(), t.begin(), t.end());
    } else if (a == "--default-tol") {
      const char* v = needValue("--default-tol");
      if (!v) return 2;
      defaultTol = std::strtod(v, nullptr);
    } else if (a == "--tol") {
      const char* v = needValue("--tol");
      if (!v) return 2;
      std::string spec = v;
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::cerr << "mmx-stats: --tol expects PREFIX=REL, got '" << spec
                  << "'\n";
        return 2;
      }
      rules.push_back(
          {spec.substr(0, eq), std::strtod(spec.c_str() + eq + 1, nullptr)});
    } else {
      paths.push_back(a);
    }
  }
  if (paths.size() != 2) return usage();

  Json base, cur;
  if (!loadJson(paths[0], base) || !loadJson(paths[1], cur)) return 1;
  auto failures = check(flatten(base), flatten(cur), rules, defaultTol);
  for (const CheckFailure& f : failures) {
    if (f.missing)
      std::printf("FAIL %-52s missing from %s (baseline %.6g)\n",
                  f.name.c_str(), paths[1].c_str(), f.base);
    else
      std::printf("FAIL %-52s %16.6g -> %16.6g (%+.2f%%, tol ±%.2f%%)\n",
                  f.name.c_str(), f.base, f.current, f.relative * 100,
                  f.tol * 100);
  }
  if (failures.empty()) std::printf("OK: all baseline metrics within tolerance\n");
  return checkExitCode(failures);
}

int cmdJsonl(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  std::ifstream in(args[0]);
  if (!in) {
    std::cerr << "mmx-stats: cannot open " << args[0] << "\n";
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  JsonlSummary summary;
  std::string err;
  if (!validateJsonl(ss.str(), summary, err)) {
    std::cerr << "mmx-stats: " << args[0] << ": " << err << "\n";
    return 1;
  }
  std::printf("OK: %zu line(s), export.seq %.0f..%.0f, %zu metric key(s)\n",
              summary.lines, summary.firstSeq, summary.lastSeq,
              summary.totals.size());
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "merge") return cmdMerge(args);
  if (cmd == "diff") return cmdDiff(args);
  if (cmd == "check") return cmdCheck(args);
  if (cmd == "jsonl") return cmdJsonl(args);
  return usage();
}
