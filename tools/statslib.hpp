// statslib: the parsing/normalization core of the mmx-stats tool, kept
// header-only so tests can exercise it without linking the CLI.
//
// Three JSON shapes flow through the project's observability pipeline:
//   1. flat stats objects ({"metric": number, ...}) from `mmc --stats-json`,
//      MMX_STATS_JSON bench runs, and instrumented programs' MMX_PROF_JSON;
//   2. google-benchmark reports ({"context": ..., "benchmarks": [...]})
//      from the CI bench jobs (BENCH_matmul.json, BENCH_shapecheck.json);
//   3. Chrome trace-event files ({"traceEvents": [...]}) from
//      `mmc --trace-json` and instrumented programs' MMX_PROF_TRACE.
// `flatten` maps shapes 1 and 2 onto one metric->value map so diff/check
// treat them uniformly; `mergeTraces` splices shape 3 files onto a single
// timeline (the compiler emits pid 1, instrumented runtimes pid 2).
#pragma once

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mmx::stats {

// --- minimal JSON ---------------------------------------------------------

struct Json {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj };
  Kind kind = Kind::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  // Insertion-ordered object (flat stats files are written sorted already).
  std::vector<std::pair<std::string, Json>> obj;

  const Json* get(std::string_view key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  /// Parses one JSON value; returns false (with a message) on any error,
  /// including trailing garbage.
  bool parse(Json& out, std::string& err) {
    if (!value(out, err)) return false;
    ws();
    if (pos_ != s_.size()) {
      err = at("trailing characters after JSON value");
      return false;
    }
    return true;
  }

private:
  std::string at(const std::string& msg) const {
    return msg + " (offset " + std::to_string(pos_) + ")";
  }
  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool lit(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(Json& out, std::string& err) {
    ws();
    if (pos_ >= s_.size()) {
      err = at("unexpected end of input");
      return false;
    }
    switch (s_[pos_]) {
      case '{': return object(out, err);
      case '[': return array(out, err);
      case '"':
        out.kind = Json::Kind::Str;
        return string(out.str, err);
      case 't':
        out.kind = Json::Kind::Bool;
        out.b = true;
        if (lit("true")) return true;
        err = at("bad literal");
        return false;
      case 'f':
        out.kind = Json::Kind::Bool;
        out.b = false;
        if (lit("false")) return true;
        err = at("bad literal");
        return false;
      case 'n':
        out.kind = Json::Kind::Null;
        if (lit("null")) return true;
        err = at("bad literal");
        return false;
      default: return number(out, err);
    }
  }

  bool number(Json& out, std::string& err) {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) {
      err = at("expected a value");
      return false;
    }
    out.kind = Json::Kind::Num;
    std::string tok(s_.substr(start, pos_ - start));
    char* end = nullptr;
    out.num = std::strtod(tok.c_str(), &end);
    if (!end || *end) {
      err = at("malformed number '" + tok + "'");
      return false;
    }
    return true;
  }

  bool string(std::string& out, std::string& err) {
    ++pos_; // opening quote
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            err = at("truncated \\u escape");
            return false;
          }
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              v |= static_cast<unsigned>(h - 'A' + 10);
            else {
              err = at("bad \\u escape");
              return false;
            }
          }
          // Observability files only escape control chars; decode the
          // BMP code point as UTF-8.
          if (v < 0x80) {
            out += static_cast<char>(v);
          } else if (v < 0x800) {
            out += static_cast<char>(0xC0 | (v >> 6));
            out += static_cast<char>(0x80 | (v & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (v >> 12));
            out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (v & 0x3F));
          }
          break;
        }
        default: {
          err = at(std::string("unknown escape '\\") + e + "'");
          return false;
        }
      }
    }
    if (pos_ >= s_.size()) {
      err = at("unterminated string");
      return false;
    }
    ++pos_; // closing quote
    return true;
  }

  bool array(Json& out, std::string& err) {
    out.kind = Json::Kind::Arr;
    ++pos_;
    ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Json v;
      if (!value(v, err)) return false;
      out.arr.push_back(std::move(v));
      ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      err = at("expected ',' or ']'");
      return false;
    }
  }

  bool object(Json& out, std::string& err) {
    out.kind = Json::Kind::Obj;
    ++pos_;
    ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        err = at("expected object key");
        return false;
      }
      std::string key;
      if (!string(key, err)) return false;
      ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        err = at("expected ':'");
        return false;
      }
      ++pos_;
      Json v;
      if (!value(v, err)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      err = at("expected ',' or '}'");
      return false;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

inline bool parseJson(std::string_view text, Json& out, std::string& err) {
  return JsonParser(text).parse(out, err);
}

inline std::string renderJsonString(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out + "\"";
}

/// Numbers render integer-exact when they are integers (counter values
/// survive a merge round-trip byte-identically).
inline std::string renderJsonNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

inline std::string render(const Json& v) {
  switch (v.kind) {
    case Json::Kind::Null: return "null";
    case Json::Kind::Bool: return v.b ? "true" : "false";
    case Json::Kind::Num: return renderJsonNumber(v.num);
    case Json::Kind::Str: return renderJsonString(v.str);
    case Json::Kind::Arr: {
      std::string out = "[";
      for (size_t i = 0; i < v.arr.size(); ++i) {
        if (i) out += ",";
        out += render(v.arr[i]);
      }
      return out + "]";
    }
    case Json::Kind::Obj: {
      std::string out = "{";
      for (size_t i = 0; i < v.obj.size(); ++i) {
        if (i) out += ",";
        out += renderJsonString(v.obj[i].first) + ":" + render(v.obj[i].second);
      }
      return out + "}";
    }
  }
  return "null";
}

// --- normalization --------------------------------------------------------

/// Flattens a stats-bearing JSON document to metric -> value:
///   - flat stats objects map through verbatim (numeric members only);
///   - google-benchmark reports contribute
///     "<benchmark name>.real_time" / ".cpu_time" (in the report's
///     time_unit) plus any numeric user counters as "<name>.<counter>".
/// Other shapes (e.g. traces) flatten to an empty map.
inline std::map<std::string, double> flatten(const Json& doc) {
  std::map<std::string, double> out;
  if (doc.kind != Json::Kind::Obj) return out;
  if (const Json* benchmarks = doc.get("benchmarks");
      benchmarks && benchmarks->kind == Json::Kind::Arr) {
    for (const Json& b : benchmarks->arr) {
      const Json* name = b.get("name");
      if (!name || name->kind != Json::Kind::Str) continue;
      // Skip aggregate rows (mean/median/stddev) — the raw rows carry the
      // regression signal and aggregates double-count them.
      if (b.get("run_type") && b.get("run_type")->str == "aggregate")
        continue;
      for (const auto& [k, v] : b.obj) {
        if (v.kind != Json::Kind::Num) continue;
        // Bookkeeping fields carry no regression signal.
        if (k == "family_index" || k == "per_family_instance_index" ||
            k == "repetitions" || k == "repetition_index" ||
            k == "iterations" || k == "threads")
          continue;
        out[name->str + "." + k] = v.num;
      }
    }
    return out;
  }
  for (const auto& [k, v] : doc.obj)
    if (v.kind == Json::Kind::Num) out[k] = v.num;
  return out;
}

inline bool isTrace(const Json& doc) {
  return doc.kind == Json::Kind::Obj && doc.get("traceEvents") != nullptr;
}

/// Splices several Chrome trace files onto one timeline: the result keeps
/// the first file's top-level fields and concatenates everyone's events.
/// Pass the compiler's --trace-json output and an instrumented program's
/// MMX_PROF_TRACE dump to see translation (pid 1) above execution (pid 2).
inline Json mergeTraces(const std::vector<Json>& docs) {
  Json out;
  out.kind = Json::Kind::Obj;
  Json events;
  events.kind = Json::Kind::Arr;
  bool first = true;
  for (const Json& d : docs) {
    const Json* evs = d.get("traceEvents");
    if (!evs || evs->kind != Json::Kind::Arr) continue;
    for (const Json& e : evs->arr) events.arr.push_back(e);
    if (first) {
      for (const auto& [k, v] : d.obj)
        if (k != "traceEvents") out.obj.emplace_back(k, v);
      first = false;
    }
  }
  out.obj.emplace_back("traceEvents", std::move(events));
  // Canonical field order: traceEvents first, like the emitters write.
  std::rotate(out.obj.begin(), out.obj.end() - 1, out.obj.end());
  return out;
}

// --- interval-export JSONL ------------------------------------------------

struct JsonlSummary {
  size_t lines = 0;
  double firstSeq = 0;
  double lastSeq = 0;
  /// Numeric payload keys summed across all lines. The exporter writes
  /// monotonic counters as per-interval deltas, so the sums reconstruct
  /// the run totals (instantaneous keys like .p50 sum meaninglessly and
  /// are simply informational here).
  std::map<std::string, double> totals;
};

/// Validates one continuous-export JSONL stream: every non-empty line must
/// parse as a JSON object carrying numeric export.seq / export.ts_ms, with
/// export.seq strictly increasing. Both `mmc` ($MMX_STATS_INTERVAL_MS) and
/// instrumented translated programs emit this shape, so one validator
/// gates them both in CI. Returns false with a message naming the
/// offending line.
inline bool validateJsonl(std::string_view text, JsonlSummary& out,
                          std::string& err) {
  size_t lineNo = 0, pos = 0;
  double prevSeq = -1;
  out = {};
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() : nl + 1;
    ++lineNo;
    if (line.empty()) continue;
    auto fail = [&](const std::string& what) {
      err = "line " + std::to_string(lineNo) + ": " + what;
      return false;
    };
    Json doc;
    std::string perr;
    if (!parseJson(line, doc, perr)) return fail(perr);
    if (doc.kind != Json::Kind::Obj) return fail("not a JSON object");
    const Json* seq = doc.get("export.seq");
    const Json* ts = doc.get("export.ts_ms");
    if (!seq || seq->kind != Json::Kind::Num)
      return fail("missing numeric export.seq");
    if (!ts || ts->kind != Json::Kind::Num)
      return fail("missing numeric export.ts_ms");
    if (seq->num <= prevSeq)
      return fail("export.seq not strictly increasing");
    if (out.lines == 0) out.firstSeq = seq->num;
    prevSeq = out.lastSeq = seq->num;
    ++out.lines;
    for (const auto& [k, v] : doc.obj)
      if (v.kind == Json::Kind::Num && k.rfind("export.", 0) != 0)
        out.totals[k] += v.num;
  }
  if (!out.lines) {
    err = "no JSONL lines";
    return false;
  }
  return true;
}

// --- diff / check ---------------------------------------------------------

struct MetricDelta {
  std::string name;
  double base = 0;
  double current = 0;
  /// Relative change vs base; +inf when base == 0 and current != 0.
  double relative() const {
    if (base == 0) return current == 0 ? 0 : INFINITY;
    return (current - base) / std::fabs(base);
  }
};

struct DiffResult {
  std::vector<MetricDelta> common;
  std::vector<std::string> onlyInBase;
  std::vector<std::string> onlyInCurrent;
};

inline DiffResult diff(const std::map<std::string, double>& base,
                       const std::map<std::string, double>& current) {
  DiffResult r;
  for (const auto& [k, v] : base) {
    auto it = current.find(k);
    if (it == current.end())
      r.onlyInBase.push_back(k);
    else
      r.common.push_back({k, v, it->second});
  }
  for (const auto& [k, v] : current)
    if (!base.count(k)) r.onlyInCurrent.push_back(k);
  return r;
}

/// One tolerance rule: metrics whose name starts with `prefix` may move by
/// at most `tol` (relative, e.g. 0.25 = 25%). A pattern beginning with '*'
/// matches name *endings* instead — histogram quantiles (".p50") and other
/// per-run-volatile fields live at the end of the key, after an arbitrary
/// metric stem. Later rules win, so generic defaults go first and specific
/// overrides after.
struct TolRule {
  std::string prefix;
  double tol = 0;
};

inline bool ruleMatches(const std::string& name, const std::string& pat) {
  if (!pat.empty() && pat[0] == '*') {
    std::string_view suffix = std::string_view(pat).substr(1);
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  }
  return name.rfind(pat, 0) == 0;
}

inline double toleranceFor(const std::string& name,
                           const std::vector<TolRule>& rules,
                           double defaultTol) {
  double tol = defaultTol;
  for (const TolRule& r : rules)
    if (ruleMatches(name, r.prefix)) tol = r.tol;
  return tol;
}

/// Presence-only rules for the run-to-run-volatile telemetry rows: latency
/// histogram quantiles/extremes/sums move every run, PMU samples are
/// host-dependent, and per-thread busy times depend on scheduling. Counts
/// stay exact under the default tolerance — for a fixed program the number
/// of pool tasks, kernel calls, and allocations is deterministic, which is
/// exactly the schema signal `mmx-stats check` gates on. Prepend these
/// before user rules so explicit --tol flags still win.
inline std::vector<TolRule> telemetryTolRules() {
  return {{"*.p50", -1},         {"*.p95", -1},
          {"*.p99", -1},         {"*.max", -1},
          {"*.sum", -1},         {"*.max_ns", -1},
          {"*.ns", -1},          {"*.busy_ns", -1},
          {"pmu.", -1},          {"*.pmu.cycles", -1},
          {"*.pmu.instructions", -1}, {"*.pmu.cacheMisses", -1},
          {"*.pmu.branchMisses", -1}, {"export.", -1},
          {"trace.droppedEvents", -1}};
}

struct CheckFailure {
  std::string name;
  double base = 0, current = 0, relative = 0, tol = 0;
  bool missing = false; // metric present in baseline, absent now
};

/// Gate: every baseline metric must exist in `current` and sit within its
/// tolerance. A negative tolerance is presence-only: the metric must still
/// exist (a benchmark that stopped running is a regression) but any value
/// passes — the right setting for wall-clock metrics when baseline and
/// current runs come from different machines. Metrics only in `current`
/// are informational, never failures (new counters appear whenever
/// instrumentation grows).
inline std::vector<CheckFailure>
check(const std::map<std::string, double>& base,
      const std::map<std::string, double>& current,
      const std::vector<TolRule>& rules, double defaultTol) {
  std::vector<CheckFailure> failures;
  for (const auto& [k, v] : base) {
    double tol = toleranceFor(k, rules, defaultTol);
    auto it = current.find(k);
    if (it == current.end()) {
      failures.push_back({k, v, 0, 0, tol, true});
      continue;
    }
    if (tol < 0) continue; // presence-only
    MetricDelta d{k, v, it->second};
    double rel = d.relative();
    if (std::fabs(rel) > tol)
      failures.push_back({k, v, it->second, rel, tol, false});
  }
  return failures;
}

/// Exit code for `mmx-stats diff`: 0 when every baseline metric is still
/// present (current-only keys are informational — instrumentation grows,
/// and thread-count-dependent omp.tN.* metrics come and go), 2 when the
/// baseline schema is no longer satisfied.
inline int diffExitCode(const DiffResult& r) {
  return r.onlyInBase.empty() ? 0 : 2;
}

/// Exit code for `mmx-stats check`: 2 when a baseline metric vanished
/// (schema mismatch — more severe than any value drift), 1 when values
/// moved past tolerance, 0 when clean.
inline int checkExitCode(const std::vector<CheckFailure>& failures) {
  bool missing = false, moved = false;
  for (const CheckFailure& f : failures) (f.missing ? missing : moved) = true;
  return missing ? 2 : moved ? 1 : 0;
}

} // namespace mmx::stats
